package multistack

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"random", Config{Width: 4, Policy: Random}, true},
		{"c2", Config{Width: 4, Policy: RandomC2}, true},
		{"robin", Config{Width: 4, Policy: RoundRobin}, true},
		{"width 1", Config{Width: 1, Policy: Random}, true},
		{"zero width", Config{Width: 0, Policy: Random}, false},
		{"bad policy", Config{Width: 4, Policy: Policy(99)}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	if Random.String() != "random" || RandomC2.String() != "random-c2" || RoundRobin.String() != "k-robin" {
		t.Fatal("policy names drifted from the paper's")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatalf("unknown policy formatting: %s", Policy(9))
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(zero Config) did not panic")
		}
	}()
	MustNew[int](Config{})
}

func policies() []Policy { return []Policy{Random, RandomC2, RoundRobin} }

func TestEmptyPopAllPolicies(t *testing.T) {
	for _, p := range policies() {
		s := MustNew[int](Config{Width: 4, Policy: p})
		h := s.NewHandle()
		if _, ok := h.Pop(); ok {
			t.Errorf("%v: Pop on empty returned ok", p)
		}
	}
}

func TestPushPopSingleAllPolicies(t *testing.T) {
	for _, p := range policies() {
		s := MustNew[int](Config{Width: 4, Policy: p})
		h := s.NewHandle()
		h.Push(7)
		if v, ok := h.Pop(); !ok || v != 7 {
			t.Errorf("%v: Pop = (%d,%v), want (7,true)", p, v, ok)
		}
		if _, ok := h.Pop(); ok {
			t.Errorf("%v: Pop after drain returned ok", p)
		}
	}
}

func TestWidthOneIsStrictAllPolicies(t *testing.T) {
	for _, p := range policies() {
		s := MustNew[uint64](Config{Width: 1, Policy: p})
		h := s.NewHandle()
		for v := uint64(0); v < 100; v++ {
			h.Push(v)
		}
		for want := uint64(99); ; want-- {
			v, ok := h.Pop()
			if !ok {
				if want != ^uint64(0) { // wrapped below zero means drained exactly
					t.Errorf("%v: premature empty at %d", p, want)
				}
				break
			}
			if v != want {
				t.Errorf("%v: Pop = %d, want %d", p, v, want)
				break
			}
			if want == 0 {
				if _, ok := h.Pop(); ok {
					t.Errorf("%v: extra item after drain", p)
				}
				break
			}
		}
	}
}

func TestRoundRobinSpreadsEvenly(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Policy: RoundRobin})
	h := s.NewHandle()
	for i := 0; i < 400; i++ {
		h.Push(i)
	}
	for i, c := range s.SubCounts() {
		if c != 100 {
			t.Fatalf("sub-stack %d holds %d items, want exactly 100 (round robin): %v", i, c, s.SubCounts())
		}
	}
}

func TestRandomSpreadsRoughly(t *testing.T) {
	s := MustNew[int](Config{Width: 4, Policy: Random})
	h := s.NewHandle()
	const n = 4000
	for i := 0; i < n; i++ {
		h.Push(i)
	}
	for i, c := range s.SubCounts() {
		if c < n/4-n/10 || c > n/4+n/10 {
			t.Fatalf("sub-stack %d holds %d items, want ~%d: %v", i, c, n/4, s.SubCounts())
		}
	}
}

func TestC2BalancesBetterThanRandom(t *testing.T) {
	// Power-of-two-choices keeps the max/min spread tight; with pure
	// random it is noticeably wider. Compare imbalance at equal load.
	spread := func(policy Policy) int {
		s := MustNew[int](Config{Width: 8, Policy: policy})
		h := s.NewHandle()
		for i := 0; i < 8000; i++ {
			h.Push(i)
		}
		counts := s.SubCounts()
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max - min
	}
	c2 := spread(RandomC2)
	if c2 > 2 {
		// Greedy two-choice placement with exact counters keeps the spread
		// within one item of perfect balance.
		t.Fatalf("random-c2 spread = %d, want <= 2", c2)
	}
}

func TestPopSweepsToNonEmpty(t *testing.T) {
	// Even if the scheduler picks an empty sub-stack, Pop must find the
	// item rather than reporting empty.
	for _, p := range policies() {
		s := MustNew[int](Config{Width: 8, Policy: p})
		h := s.NewHandle()
		h.Push(42)
		for i := 0; i < 8; i++ { // several attempts, all must succeed once
			if v, ok := h.Pop(); !ok || v != 42 {
				t.Errorf("%v: Pop = (%d,%v), want (42,true)", p, v, ok)
			}
			h.Push(42)
		}
	}
}

func TestValueConservationSequentialAllPolicies(t *testing.T) {
	for _, p := range policies() {
		s := MustNew[uint64](Config{Width: 5, Policy: p})
		h := s.NewHandle()
		const n = 3000
		for v := uint64(0); v < n; v++ {
			h.Push(v)
		}
		seen := make(map[uint64]bool, n)
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			if seen[v] {
				t.Errorf("%v: value %d popped twice", p, v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Errorf("%v: recovered %d values, want %d", p, len(seen), n)
		}
	}
}

func TestConcurrentConservationAllPolicies(t *testing.T) {
	for _, p := range policies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			const (
				workers = 8
				perW    = 2000
			)
			s := MustNew[uint64](Config{Width: 8, Policy: p})
			popped := make([][]uint64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					h := s.NewHandle()
					for i := 0; i < perW; i++ {
						h.Push(uint64(w*perW + i))
						if i%2 == 1 {
							if v, ok := h.Pop(); ok {
								popped[w] = append(popped[w], v)
							}
						}
					}
				}(w)
			}
			wg.Wait()
			seen := make(map[uint64]int)
			for _, vs := range popped {
				for _, v := range vs {
					seen[v]++
				}
			}
			for _, v := range s.Drain() {
				seen[v]++
			}
			if len(seen) != workers*perW {
				t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d recovered %d times", v, n)
				}
			}
		})
	}
}

func TestTwoChoicesDistinct(t *testing.T) {
	s := MustNew[int](Config{Width: 8, Policy: RandomC2})
	h := s.NewHandle()
	for trial := 0; trial < 1000; trial++ {
		i, j := h.twoChoices()
		if i == j {
			t.Fatalf("twoChoices returned equal indexes %d with width 8", i)
		}
		if i < 0 || i >= 8 || j < 0 || j >= 8 {
			t.Fatalf("twoChoices out of range: %d, %d", i, j)
		}
	}
}

func TestTwoChoicesWidthOne(t *testing.T) {
	s := MustNew[int](Config{Width: 1, Policy: RandomC2})
	h := s.NewHandle()
	i, j := h.twoChoices()
	if i != 0 || j != 0 {
		t.Fatalf("twoChoices with width 1 = (%d,%d), want (0,0)", i, j)
	}
}

// Property: conservation for arbitrary scripts across policies.
func TestPropertyConservation(t *testing.T) {
	f := func(widthRaw, policyRaw uint8, script []bool) bool {
		width := int(widthRaw%6) + 1
		policy := policies()[int(policyRaw)%3]
		s := MustNew[uint64](Config{Width: width, Policy: policy})
		h := s.NewHandle()
		pushed := 0
		recovered := make(map[uint64]bool)
		next := uint64(1)
		for _, isPush := range script {
			if isPush {
				h.Push(next)
				next++
				pushed++
			} else if v, ok := h.Pop(); ok {
				if recovered[v] {
					return false
				}
				recovered[v] = true
			}
		}
		for {
			v, ok := h.Pop()
			if !ok {
				break
			}
			if recovered[v] {
				return false
			}
			recovered[v] = true
		}
		return len(recovered) == pushed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
