// Package multistack implements the one-dimensional (horizontal-only)
// distributed stack designs the paper compares against: an array of
// independent Treiber sub-stacks with an operation scheduler on top.
//
// Three schedulers from the paper's Section 1 are provided:
//
//   - Random: every operation picks a sub-stack uniformly at random
//     ("random" in Figure 2; cf. distributed queues, Haas et al. CF'13).
//   - RandomC2: power of two choices ("random-c2"; cf. MultiQueues, Rihani
//     et al. SPAA'15) — sample two sub-stacks, push to the shorter, pop
//     from the longer, which both balances load and biases pops toward
//     fresher items.
//   - RoundRobin: each handle cycles deterministically through the
//     sub-stacks ("k-robin"). On contention it keeps retrying the same
//     sub-stack — exactly the behaviour the paper contrasts with the
//     2D-Stack's contention-avoiding hop.
//
// None of these maintains a window: relaxation is bounded only by the
// scheduling discipline (round-robin) or unbounded in adversarial schedules
// (random), which is why the paper's Figure 1 admits only k-robin among
// them.
package multistack

import (
	"fmt"

	"stack2d/internal/core"
	"stack2d/internal/pad"
	"stack2d/internal/treiber"
	"stack2d/internal/xrand"
)

// Policy selects the operation scheduler.
type Policy int

// Available scheduling policies.
const (
	Random Policy = iota
	RandomC2
	RoundRobin
)

func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case RandomC2:
		return "random-c2"
	case RoundRobin:
		return "k-robin"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config tunes a distributed multi-stack.
type Config struct {
	// Width is the number of Treiber sub-stacks.
	Width int
	// Policy is the operation scheduler.
	Policy Policy
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Width < 1 {
		return fmt.Errorf("multistack: Width must be >= 1, got %d", c.Width)
	}
	switch c.Policy {
	case Random, RandomC2, RoundRobin:
		return nil
	default:
		return fmt.Errorf("multistack: unknown policy %d", int(c.Policy))
	}
}

// paddedStack keeps each sub-stack's hot atomics on separate cache lines.
type paddedStack[T any] struct {
	st treiber.Stack[T]
	_  [pad.CacheLineSize - 16]byte
}

// Stack is a horizontally distributed stack. Create with New; obtain one
// Handle per goroutine.
type Stack[T any] struct {
	cfg  Config
	subs []paddedStack[T]
	seed pad.Uint64Line
}

// New returns an empty multi-stack.
func New[T any](cfg Config) (*Stack[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stack[T]{cfg: cfg, subs: make([]paddedStack[T], cfg.Width)}, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Stack[T] {
	s, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the stack's configuration.
func (s *Stack[T]) Config() Config { return s.cfg }

// Len sums the sub-stack counters; approximate under concurrency.
func (s *Stack[T]) Len() int {
	n := 0
	for i := range s.subs {
		n += s.subs[i].st.Len()
	}
	return n
}

// SubCounts snapshots the per-sub-stack populations; diagnostics.
func (s *Stack[T]) SubCounts() []int {
	out := make([]int, len(s.subs))
	for i := range s.subs {
		out[i] = s.subs[i].st.Len()
	}
	return out
}

// Drain empties all sub-stacks; teardown/testing helper.
func (s *Stack[T]) Drain() []T {
	var out []T
	for i := range s.subs {
		out = append(out, s.subs[i].st.Drain()...)
	}
	return out
}

// Handle is the per-goroutine operation context: RNG for the random
// policies, cursor for round-robin.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	pos   int
	stats *core.OpStats
}

// NewHandle returns an operation handle starting at a random cursor.
func (s *Stack[T]) NewHandle() *Handle[T] {
	rng := xrand.New(s.seed.V.Add(0x9e3779b97f4a7c15))
	return &Handle[T]{s: s, rng: rng, pos: rng.Intn(s.cfg.Width)}
}

// SetStats points the handle's internal-signal counters at st (nil
// disables, the default): sub-stack visits and scheduler samples count as
// Probes, failed sub-stack CASes as CASFailures. Operation outcomes are
// counted by the backend adapter in internal/relax, not here.
// Owner-goroutine only.
func (h *Handle[T]) SetStats(st *core.OpStats) { h.stats = st }

// pushSub pushes v onto sub-stack i. The instrumented path retries
// TryPush on the same sub-stack — operationally identical to Push (no
// policy hops away from contention here) but with the failures visible.
func (h *Handle[T]) pushSub(i int, v T) {
	st := &h.s.subs[i].st
	if h.stats == nil {
		st.Push(v)
		return
	}
	for !st.TryPush(v) {
		h.stats.CASFailures++
	}
}

// popSub pops from sub-stack i, retrying interference exactly like
// treiber's Pop; the instrumented path counts the visit and the failures.
func (h *Handle[T]) popSub(i int) (v T, ok bool) {
	st := &h.s.subs[i].st
	if h.stats == nil {
		return st.Pop()
	}
	h.stats.Probes++
	for {
		v, ok, contended := st.TryPop()
		if ok {
			return v, true
		}
		if !contended {
			var zero T
			return zero, false
		}
		h.stats.CASFailures++
	}
}

// Push adds v to a sub-stack chosen by the configured policy.
func (h *Handle[T]) Push(v T) {
	s := h.s
	switch s.cfg.Policy {
	case Random:
		h.pushSub(h.rng.Intn(len(s.subs)), v)
	case RandomC2:
		i, j := h.twoChoices()
		// Push to the shorter of the two samples (load balancing).
		if s.subs[j].st.Len() < s.subs[i].st.Len() {
			i = j
		}
		h.pushSub(i, v)
	case RoundRobin:
		h.pos++
		if h.pos >= len(s.subs) {
			h.pos = 0
		}
		// Treiber Push retries its CAS on the same sub-stack: k-robin does
		// not hop away from contention, which is the behaviour Figure 1
		// penalises.
		h.pushSub(h.pos, v)
	}
}

// Pop removes a value using the configured policy; ok is false when every
// sub-stack was observed empty in one pass.
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	width := len(s.subs)
	var start int
	switch s.cfg.Policy {
	case Random:
		start = h.rng.Intn(width)
	case RandomC2:
		i, j := h.twoChoices()
		// Pop from the longer of the two samples.
		if s.subs[j].st.Len() > s.subs[i].st.Len() {
			i = j
		}
		start = i
	case RoundRobin:
		h.pos++
		if h.pos >= width {
			h.pos = 0
		}
		start = h.pos
	}
	// Try the chosen sub-stack, then sweep the rest so that an unlucky
	// choice does not report a non-empty stack as empty.
	for probe := 0; probe < width; probe++ {
		i := start + probe
		if i >= width {
			i -= width
		}
		if v, ok := h.popSub(i); ok {
			if s.cfg.Policy == RoundRobin {
				h.pos = i
			}
			return v, true
		}
	}
	var zero T
	return zero, false
}

// twoChoices samples two distinct sub-stack indexes (equal only when
// width == 1).
func (h *Handle[T]) twoChoices() (int, int) {
	w := len(h.s.subs)
	if h.stats != nil {
		h.stats.Probes += 2 // the two scheduler samples
	}
	i := h.rng.Intn(w)
	if w == 1 {
		return i, i
	}
	j := h.rng.Intn(w - 1)
	if j >= i {
		j++
	}
	return i, j
}
