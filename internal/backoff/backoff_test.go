package backoff

import "testing"

func TestNewValidatesBounds(t *testing.T) {
	cases := []struct{ min, max int }{
		{0, 10}, {-1, 10}, {5, 4}, {0, 0},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", c.min, c.max)
				}
			}()
			New(c.min, c.max, 1)
		}()
	}
}

func TestCapDoublesAndSaturates(t *testing.T) {
	b := New(2, 16, 1)
	want := []int{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := b.Current(); got != w {
			t.Fatalf("wait %d: cap = %d, want %d", i, got, w)
		}
		b.Wait()
	}
}

func TestCapSaturatesAtNonPowerMax(t *testing.T) {
	b := New(3, 10, 1)
	b.Wait() // cap 3 -> 6
	b.Wait() // cap 6 -> 10 (not 12)
	if got := b.Current(); got != 10 {
		t.Fatalf("cap = %d, want clamped 10", got)
	}
}

func TestResetRestoresMin(t *testing.T) {
	b := New(2, 64, 1)
	for i := 0; i < 10; i++ {
		b.Wait()
	}
	b.Reset()
	if got := b.Current(); got != 2 {
		t.Fatalf("after Reset, cap = %d, want 2", got)
	}
}

func TestWaitTerminates(t *testing.T) {
	b := New(1, 4, 9)
	for i := 0; i < 1000; i++ {
		b.Wait() // must not deadlock or panic
	}
}
