// Package backoff implements bounded exponential backoff for CAS retry
// loops.
//
// The elimination stack (Hendler, Shavit, Yerushalmi 2010) alternates
// between the central Treiber stack and a collision layer, waiting a bounded
// random interval in the collision slot; the 2D-Stack itself does not spin —
// it hops — but its baselines need a conventional backoff, and the harness
// uses one to throttle adversarial tests.
package backoff

import (
	"runtime"

	"stack2d/internal/xrand"
)

// Backoff is a per-goroutine bounded exponential backoff. The zero value is
// not valid; use New.
type Backoff struct {
	rng     *xrand.State
	min     int // minimum spin iterations
	max     int // maximum spin iterations (cap)
	current int // current cap, doubles on each Wait
}

// New returns a Backoff whose first wait spins up to min iterations and
// whose cap doubles on every Wait until reaching max. Both bounds must be
// positive and min <= max.
func New(min, max int, seed uint64) *Backoff {
	if min <= 0 || max < min {
		panic("backoff: invalid bounds")
	}
	return &Backoff{rng: xrand.New(seed), min: min, max: max, current: min}
}

// Wait blocks the calling goroutine for a random interval up to the current
// cap, then doubles the cap (bounded by max). The wait is implemented as
// Gosched-yields rather than timer sleeps: at the microsecond scale of CAS
// contention a timer would overshoot by orders of magnitude.
func (b *Backoff) Wait() {
	spins := 1 + b.rng.Intn(b.current)
	for i := 0; i < spins; i++ {
		runtime.Gosched()
	}
	if b.current < b.max {
		b.current *= 2
		if b.current > b.max {
			b.current = b.max
		}
	}
}

// Reset restores the cap to its minimum. Call after a successful operation
// so that the next contention episode starts gently.
func (b *Backoff) Reset() { b.current = b.min }

// Current exposes the present cap; used by tests and adaptive policies.
func (b *Backoff) Current() int { return b.current }
