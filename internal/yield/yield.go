// Package yield defines the vocabulary of the deterministic schedule
// director's yield points (internal/director, DESIGN.md §10): the small set
// of semantically meaningful places where a data-path package offers the
// director a chance to suspend the running operation and interleave another
// one.
//
// The contract is deliberately minimal so the data-path packages stay free
// of any scheduler dependency: each participating package (internal/core,
// internal/twodqueue, internal/engine) exports a package-level function
// pointer
//
//	var Gate func(yield.Point)
//
// that is nil in production — the hook then costs one predicted-untaken
// nil check on paths that are already slow (a failed CAS, a window move, a
// reconfiguration, a drain wait) and nothing at all on the uncontended fast
// path, which never reaches a gate site. The director installs its
// scheduler into the gates for the duration of one directed run and
// restores nil afterwards; installation must happen while no operations are
// in flight (the happens-before edge is the director's own task spawning).
//
// This package must stay dependency-free: it is imported by the hot-path
// packages.
package yield

// Point identifies one yield-point class. The data-path constants below are
// the injection sites named by DESIGN.md §10; the director adds its own
// op-boundary points in the same value space so one recorded schedule
// vocabulary covers both.
type Point uint8

const (
	// PointCASFail fires immediately after an operation's descriptor (or
	// sub-structure) CAS lost to a concurrent operation — the moment
	// contention is detected and the search is about to hop.
	PointCASFail Point = iota
	// PointWindowMove fires immediately before an operation attempts to
	// move a window ceiling (the stack's Global raise/lower, the queue's
	// GlobalEnq/GlobalDeq raises) after a full failed coverage pass.
	PointWindowMove
	// PointGeometryPublish fires inside a reconfiguration, immediately
	// before the new geometry is published to the structure's atomic
	// pointer — the instant the window rules change for new pins.
	PointGeometryPublish
	// PointSwapDrain fires at the entry of a backend swap's drain phase,
	// immediately after the outgoing slot is marked draining
	// (internal/engine.Switcher.Swap).
	PointSwapDrain
	// PointWait fires on each iteration of a bounded-progress wait loop —
	// epoch-quiescence waits, swap drain pin-waits, operation-side
	// draining-slot retries. The director parks a task yielding here until
	// some other task makes progress, so spin loops cannot monopolise a
	// directed schedule.
	PointWait

	// PointOpBegin marks the director's own op-boundary yield: the grant on
	// which a recorded operation's interval begins. Never fired through a
	// data-path gate.
	PointOpBegin
	// PointSpawn marks a task's very first grant, before its body runs.
	PointSpawn
)

// String returns the schedule-trace name of the point.
func (p Point) String() string {
	switch p {
	case PointCASFail:
		return "cas-fail"
	case PointWindowMove:
		return "window-move"
	case PointGeometryPublish:
		return "geometry-publish"
	case PointSwapDrain:
		return "swap-drain"
	case PointWait:
		return "wait"
	case PointOpBegin:
		return "op-begin"
	case PointSpawn:
		return "spawn"
	default:
		return "unknown"
	}
}
