package msqueue

import (
	"testing"

	"stack2d/internal/core"
)

// TestStatsVariantsMatchPlain checks the instrumented operations preserve
// FIFO behaviour and count exactly what they did (enqueue→Pushes,
// dequeue→Pops/EmptyPops — OpStats speaks the stack vocabulary).
func TestStatsVariantsMatchPlain(t *testing.T) {
	q := New[int]()
	var st core.OpStats
	const n = 100
	for i := 0; i < n; i++ {
		q.EnqueueStats(i, &st)
	}
	if st.Pushes != n {
		t.Fatalf("Pushes = %d, want %d", st.Pushes, n)
	}
	for i := 0; i < n; i++ {
		v, ok := q.DequeueStats(&st)
		if !ok || v != i {
			t.Fatalf("DequeueStats = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.DequeueStats(&st); ok {
		t.Fatal("DequeueStats on empty queue returned ok")
	}
	if st.Pops != n || st.EmptyPops != 1 {
		t.Fatalf("Pops = %d EmptyPops = %d, want %d and 1", st.Pops, st.EmptyPops, n)
	}
	if st.CASFailures != 0 {
		t.Fatalf("CASFailures = %d in a sequential run", st.CASFailures)
	}
}

// TestOpAllocs pins the per-operation allocation profile of both variants:
// one node per enqueue, zero per dequeue, instrumented identical to plain.
func TestOpAllocs(t *testing.T) {
	q := New[uint64]()
	var st core.OpStats

	if got := testing.AllocsPerRun(200, func() { q.Enqueue(1) }); got != 1 {
		t.Errorf("Enqueue allocs/op = %g, want 1", got)
	}
	if got := testing.AllocsPerRun(200, func() { q.Dequeue() }); got != 0 {
		t.Errorf("Dequeue allocs/op = %g, want 0", got)
	}
	if got := testing.AllocsPerRun(200, func() { q.EnqueueStats(1, &st) }); got != 1 {
		t.Errorf("EnqueueStats allocs/op = %g, want 1", got)
	}
	if got := testing.AllocsPerRun(200, func() { q.DequeueStats(&st) }); got != 0 {
		t.Errorf("DequeueStats allocs/op = %g, want 0", got)
	}
}

// TestDequeueStatsValueIsCollectable extends the dummy-node regression
// (TestDequeuedValueIsCollectable) to the instrumented variant: the
// winner must move the value out of the new dummy here too.
func TestDequeueStatsValueIsCollectable(t *testing.T) {
	q := New[*int]()
	var st core.OpStats
	v := new(int)
	q.EnqueueStats(v, &st)
	got, ok := q.DequeueStats(&st)
	if !ok || got != v {
		t.Fatal("DequeueStats did not return the enqueued value")
	}
	// The new dummy is the node that carried v; its value must be zeroed.
	if dummy := q.head.Load(); dummy.value != nil {
		t.Fatal("DequeueStats left the dequeued value pinned in the dummy node")
	}
}

func BenchmarkEnqueueDequeue(b *testing.B) {
	q := New[uint64]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(uint64(i))
		q.Dequeue()
	}
}

func BenchmarkEnqueueDequeueStats(b *testing.B) {
	q := New[uint64]()
	var st core.OpStats
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.EnqueueStats(uint64(i), &st)
		q.DequeueStats(&st)
	}
}
