// Package msqueue implements the classic Michael–Scott lock-free FIFO queue
// (Michael & Scott, PODC 1996). It serves the 2D-Queue extension (see
// internal/twodqueue) the same way internal/treiber serves the 2D-Stack: as
// the strict baseline and as the sub-structure building block.
//
// The queue is a singly linked list with a dummy head node. Enqueue links a
// node after the current tail and swings the tail pointer (helping a lagging
// tail forward when needed); Dequeue advances the head past the dummy. ABA
// is precluded by the garbage collector, as in the other list-based
// structures of this module.
package msqueue

import "sync/atomic"

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// Queue is a lock-free FIFO queue. Create with New; it must not be copied.
type Queue[T any] struct {
	head   atomic.Pointer[node[T]] // points at the dummy; head.next is the front
	tail   atomic.Pointer[node[T]]
	length atomic.Int64
}

// New returns an empty queue.
func New[T any]() *Queue[T] {
	q := &Queue[T]{}
	dummy := &node[T]{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v at the back of the queue.
func (q *Queue[T]) Enqueue(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue // tail moved under us; re-read
		}
		if next != nil {
			// Tail is lagging: help swing it and retry.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n) // best effort; others will help
			q.length.Add(1)
			return
		}
	}
}

// Dequeue removes and returns the front value; ok is false if the queue was
// observed empty.
func (q *Queue[T]) Dequeue() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			var zero T
			return zero, false // empty (head == tail, no next)
		}
		if head == tail {
			// Tail lagging behind a non-empty list: help it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.length.Add(-1)
			// next is now the dummy; clear its value so the queue does not
			// pin the dequeued item for the GC until the following dequeue.
			// Safe: only the CAS winner reads next.value.
			v = next.value
			var zero T
			next.value = zero
			return v, true
		}
	}
}

// TryDequeue attempts a single CAS round. contended distinguishes
// interference from emptiness, mirroring treiber.Stack.TryPop for the
// window search in the 2D-Queue.
func (q *Queue[T]) TryDequeue() (v T, ok bool, contended bool) {
	head := q.head.Load()
	tail := q.tail.Load()
	next := head.next.Load()
	if next == nil {
		var zero T
		return zero, false, false
	}
	if head == tail {
		q.tail.CompareAndSwap(tail, next)
	}
	if q.head.CompareAndSwap(head, next) {
		q.length.Add(-1)
		// As in Dequeue: the winner moves the value out of the new dummy.
		v = next.value
		var zero T
		next.value = zero
		return v, true, false
	}
	var zero T
	return zero, false, true
}

// TryEnqueue attempts a single CAS round to append v. It reports whether it
// succeeded; a false return means another enqueuer interfered (or the tail
// was lagging and was helped forward). It exists for the 2D-Queue's window
// search, which treats a failed attempt as a contention signal and hops to
// another sub-queue instead of spinning here.
func (q *Queue[T]) TryEnqueue(v T) bool {
	n := &node[T]{value: v}
	tail := q.tail.Load()
	next := tail.next.Load()
	if next != nil {
		q.tail.CompareAndSwap(tail, next)
		return false
	}
	if tail.next.CompareAndSwap(nil, n) {
		q.tail.CompareAndSwap(tail, n)
		q.length.Add(1)
		return true
	}
	return false
}

// Empty reports whether the queue was observed empty.
func (q *Queue[T]) Empty() bool {
	head := q.head.Load()
	return head.next.Load() == nil
}

// Len returns the approximate number of items (exact when quiescent).
func (q *Queue[T]) Len() int { return int(q.length.Load()) }

// Drain removes all items front-first; teardown/testing helper.
func (q *Queue[T]) Drain() []T {
	var out []T
	for {
		v, ok := q.Dequeue()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}
