package msqueue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"stack2d/internal/seqspec"
)

func TestEmptyDequeue(t *testing.T) {
	q := New[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	if !q.Empty() {
		t.Fatal("fresh queue not Empty")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestSequentialFIFO(t *testing.T) {
	q := New[uint64]()
	var m seqspec.FIFOModel
	for v := uint64(0); v < 200; v++ {
		q.Enqueue(v)
		m.Enqueue(v)
		if v%3 == 1 {
			got, gok := q.Dequeue()
			want, wok := m.Dequeue()
			if gok != wok || got != want {
				t.Fatalf("Dequeue = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Dequeue()
		got, gok := q.Dequeue()
		if gok != wok {
			t.Fatal("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Dequeue = %d, want %d", got, want)
		}
	}
}

func TestLenTracksQuiescent(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 3; i++ {
		q.Dequeue()
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d, want 7", q.Len())
	}
}

func TestTryDequeue(t *testing.T) {
	q := New[int]()
	if _, ok, contended := q.TryDequeue(); ok || contended {
		t.Fatal("TryDequeue on empty misreported")
	}
	q.Enqueue(1)
	v, ok, contended := q.TryDequeue()
	if !ok || contended || v != 1 {
		t.Fatalf("TryDequeue = (%d,%v,%v), want (1,true,false)", v, ok, contended)
	}
}

func TestDrainOrder(t *testing.T) {
	q := New[int]()
	for i := 1; i <= 5; i++ {
		q.Enqueue(i)
	}
	got := q.Drain()
	for i, want := range []int{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("Drain = %v", got)
		}
	}
	if !q.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2500
	q := New[uint64]()
	var wg sync.WaitGroup
	got := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				q.Enqueue(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := q.Dequeue(); ok {
						got[w] = append(got[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

func TestConcurrentSPSCOrder(t *testing.T) {
	// Single producer, single consumer: strict FIFO must be observable.
	const n = 20000
	q := New[uint64]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		want := uint64(0)
		for want < n {
			v, ok := q.Dequeue()
			if !ok {
				continue
			}
			if v != want {
				t.Errorf("dequeued %d, want %d", v, want)
				return
			}
			want++
		}
	}()
	for v := uint64(0); v < n; v++ {
		q.Enqueue(v)
	}
	<-done
}

// Property: enqueue-all then drain preserves order.
func TestPropertyDrainPreservesOrder(t *testing.T) {
	f := func(vals []uint64) bool {
		q := New[uint64]()
		for _, v := range vals {
			q.Enqueue(v)
		}
		out := q.Drain()
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDequeuedValueIsCollectable is the regression test for the dummy-node
// value pinning bug: before the fix, the node a winning Dequeue turned into
// the new dummy kept its value field, so the most recently dequeued item
// stayed reachable from the queue until the next dequeue advanced past it.
// With a finalizer on the dequeued allocation, collection after the dequeue
// proves the queue dropped its reference.
func TestDequeuedValueIsCollectable(t *testing.T) {
	q := New[*[]byte]()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	q.Enqueue(big)
	q.Enqueue(new([]byte)) // second item so the queue stays non-empty
	got, ok := q.Dequeue()
	if !ok || got != big {
		t.Fatalf("Dequeue = (%p,%v), want the enqueued pointer", got, ok)
	}
	got, big = nil, nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			if v, ok := q.Dequeue(); !ok || v == nil {
				t.Fatal("queue lost its remaining item")
			}
			return
		case <-deadline:
			t.Fatal("dequeued value still reachable: the dummy node pinned it")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestTryDequeuedValueIsCollectable covers the TryDequeue path of the same
// pinning bug.
func TestTryDequeuedValueIsCollectable(t *testing.T) {
	q := New[*[]byte]()
	big := new([]byte)
	*big = make([]byte, 1<<16)
	collected := make(chan struct{})
	runtime.SetFinalizer(big, func(*[]byte) { close(collected) })
	q.Enqueue(big)
	q.Enqueue(new([]byte))
	got, ok, _ := q.TryDequeue()
	if !ok || got != big {
		t.Fatalf("TryDequeue = (%p,%v), want the enqueued pointer", got, ok)
	}
	got, big = nil, nil
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("try-dequeued value still reachable: the dummy node pinned it")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// TestTryEnqueue exercises the single-round enqueue used by the 2D-Queue's
// contention-hopping search.
func TestTryEnqueue(t *testing.T) {
	q := New[int]()
	for i := 0; i < 100; i++ {
		for !q.TryEnqueue(i) {
		}
	}
	for want := 0; want < 100; want++ {
		v, ok := q.Dequeue()
		if !ok || v != want {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("queue not empty after drain")
	}
}
