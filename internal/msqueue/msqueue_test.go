package msqueue

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestEmptyDequeue(t *testing.T) {
	q := New[int]()
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty returned ok")
	}
	if !q.Empty() {
		t.Fatal("fresh queue not Empty")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d, want 0", q.Len())
	}
}

func TestSequentialFIFO(t *testing.T) {
	q := New[uint64]()
	var m seqspec.FIFOModel
	for v := uint64(0); v < 200; v++ {
		q.Enqueue(v)
		m.Enqueue(v)
		if v%3 == 1 {
			got, gok := q.Dequeue()
			want, wok := m.Dequeue()
			if gok != wok || got != want {
				t.Fatalf("Dequeue = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Dequeue()
		got, gok := q.Dequeue()
		if gok != wok {
			t.Fatal("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Dequeue = %d, want %d", got, want)
		}
	}
}

func TestLenTracksQuiescent(t *testing.T) {
	q := New[int]()
	for i := 0; i < 10; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 10 {
		t.Fatalf("Len = %d, want 10", q.Len())
	}
	for i := 0; i < 3; i++ {
		q.Dequeue()
	}
	if q.Len() != 7 {
		t.Fatalf("Len = %d, want 7", q.Len())
	}
}

func TestTryDequeue(t *testing.T) {
	q := New[int]()
	if _, ok, contended := q.TryDequeue(); ok || contended {
		t.Fatal("TryDequeue on empty misreported")
	}
	q.Enqueue(1)
	v, ok, contended := q.TryDequeue()
	if !ok || contended || v != 1 {
		t.Fatalf("TryDequeue = (%d,%v,%v), want (1,true,false)", v, ok, contended)
	}
}

func TestDrainOrder(t *testing.T) {
	q := New[int]()
	for i := 1; i <= 5; i++ {
		q.Enqueue(i)
	}
	got := q.Drain()
	for i, want := range []int{1, 2, 3, 4, 5} {
		if got[i] != want {
			t.Fatalf("Drain = %v", got)
		}
	}
	if !q.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2500
	q := New[uint64]()
	var wg sync.WaitGroup
	got := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				q.Enqueue(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := q.Dequeue(); ok {
						got[w] = append(got[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

func TestConcurrentSPSCOrder(t *testing.T) {
	// Single producer, single consumer: strict FIFO must be observable.
	const n = 20000
	q := New[uint64]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		want := uint64(0)
		for want < n {
			v, ok := q.Dequeue()
			if !ok {
				continue
			}
			if v != want {
				t.Errorf("dequeued %d, want %d", v, want)
				return
			}
			want++
		}
	}()
	for v := uint64(0); v < n; v++ {
		q.Enqueue(v)
	}
	<-done
}

// Property: enqueue-all then drain preserves order.
func TestPropertyDrainPreservesOrder(t *testing.T) {
	f := func(vals []uint64) bool {
		q := New[uint64]()
		for _, v := range vals {
			q.Enqueue(v)
		}
		out := q.Drain()
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
