package msqueue

import (
	"testing"

	"stack2d/internal/seqspec"
)

// TestMicroHistoriesLinearizable: exhaustive FIFO linearizability checking
// of small concurrent Michael–Scott histories, via the shared seqspec
// recording scaffolding (Push records an enqueue, Pop a dequeue).
func TestMicroHistoriesLinearizable(t *testing.T) {
	const (
		rounds  = 100
		workers = 3
		opsPerW = 4
	)
	for round := 0; round < rounds; round++ {
		q := New[uint64]()
		all := seqspec.CollectMicroHistory(workers, opsPerW, func(int) seqspec.WorkerFuncs {
			return seqspec.WorkerFuncs{Push: q.Enqueue, Pop: q.Dequeue}
		})
		if err := seqspec.CheckLinearizableFIFO(all); err != nil {
			t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
		}
	}
}
