package msqueue

import "stack2d/internal/core"

// Instrumented operation variants, mirroring treiber's PushStats/PopStats.
// The plain Enqueue/Dequeue stay counter-free (allocation pins in
// stats_test.go); the *Stats variants are what the backend adapter in
// internal/relax calls. OpStats speaks the stack vocabulary, so an
// enqueue counts as a Push and a dequeue as a Pop/EmptyPop — the
// controller's signals are operation-shaped, not order-shaped.
//
// Counter mapping: a failed link/head CAS is a CASFailure (another
// operation won the spot); a lagging-tail help and an inconsistent
// two-load snapshot are Restarts (the loop started over without losing a
// CAS of its own).

// EnqueueStats is Enqueue with operation accounting. st must not be shared
// across goroutines.
func (q *Queue[T]) EnqueueStats(v T, st *core.OpStats) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			st.Restarts++
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			st.Restarts++
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.length.Add(1)
			st.Pushes++
			return
		}
		st.CASFailures++
	}
}

// DequeueStats is Dequeue with operation accounting. st must not be shared
// across goroutines.
func (q *Queue[T]) DequeueStats(st *core.OpStats) (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			st.Restarts++
			continue
		}
		if next == nil {
			st.EmptyPops++
			var zero T
			return zero, false
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			st.Restarts++
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.length.Add(-1)
			// As in Dequeue: move the value out of the new dummy so the
			// queue does not pin it for the GC. Safe: only the CAS winner
			// reads next.value.
			v = next.value
			var zero T
			next.value = zero
			st.Pops++
			return v, true
		}
		st.CASFailures++
	}
}
