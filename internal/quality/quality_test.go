package quality

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStrictLIFOScoresZero(t *testing.T) {
	var o Oracle
	for v := uint64(1); v <= 100; v++ {
		o.Insert(v)
	}
	for v := uint64(100); v >= 1; v-- {
		if d := o.Remove(v); d != 0 {
			t.Fatalf("Remove(%d) distance = %d, want 0", v, d)
		}
	}
	st := o.Snapshot()
	if st.Count != 100 || st.Sum != 0 || st.Max != 0 {
		t.Fatalf("stats = %+v, want 100 zero-distance pops", st)
	}
	if st.Mean() != 0 {
		t.Fatalf("Mean = %g, want 0", st.Mean())
	}
}

func TestDistanceIsRankFromHead(t *testing.T) {
	var o Oracle
	o.Insert(1)
	o.Insert(2)
	o.Insert(3) // list: 3 2 1
	if d := o.Remove(1); d != 2 {
		t.Fatalf("Remove(1) = %d, want 2", d)
	}
	if d := o.Remove(3); d != 0 {
		t.Fatalf("Remove(3) = %d, want 0", d)
	}
	if d := o.Remove(2); d != 0 {
		t.Fatalf("Remove(2) = %d, want 0", d)
	}
	st := o.Snapshot()
	if st.Max != 2 {
		t.Fatalf("Max = %d, want 2", st.Max)
	}
	if got := st.Mean(); got != 2.0/3.0 {
		t.Fatalf("Mean = %g, want 2/3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var o Oracle
	// Build list 8..1 (8 at head) then pop at known distances.
	for v := uint64(1); v <= 8; v++ {
		o.Insert(v)
	}
	o.Remove(8) // d=0 -> bucket 0
	o.Remove(6) // d=1 (7 at head now... list: 7 6 5 ... after removing 8) -> recompute
	st := o.Snapshot()
	if st.Hist[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1 (one exact pop)", st.Hist[0])
	}
	if st.Hist[1] != 1 {
		t.Fatalf("bucket 1 = %d, want 1 (one distance-1 pop)", st.Hist[1])
	}
}

func TestLen(t *testing.T) {
	var o Oracle
	if o.Len() != 0 {
		t.Fatal("fresh oracle not empty")
	}
	o.Insert(1)
	o.Insert(2)
	if o.Len() != 2 {
		t.Fatalf("Len = %d, want 2", o.Len())
	}
	o.Remove(1)
	if o.Len() != 1 {
		t.Fatalf("Len = %d, want 1", o.Len())
	}
}

func TestRemoveWaitsForLateInsert(t *testing.T) {
	var o Oracle
	done := make(chan int)
	go func() { done <- o.Remove(42) }()
	// The remover is now spinning; deliver the insert.
	o.Insert(42)
	if d := <-done; d != 0 {
		t.Fatalf("late-insert Remove distance = %d, want 0", d)
	}
}

func TestConcurrentInsertRemove(t *testing.T) {
	var o Oracle
	const workers = 8
	const perW = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * perW
			for i := uint64(0); i < perW; i++ {
				o.Insert(base + i)
				o.Remove(base + i)
			}
		}(w)
	}
	wg.Wait()
	if o.Len() != 0 {
		t.Fatalf("Len = %d after balanced workload, want 0", o.Len())
	}
	st := o.Snapshot()
	if st.Count != workers*perW {
		t.Fatalf("Count = %d, want %d", st.Count, workers*perW)
	}
}

func TestMeanEmpty(t *testing.T) {
	var st Stats
	if st.Mean() != 0 {
		t.Fatal("Mean of empty stats not 0")
	}
}

func TestFIFOOracleStrictScoresZero(t *testing.T) {
	var o FIFOOracle
	for v := uint64(1); v <= 50; v++ {
		o.Insert(v)
	}
	for v := uint64(1); v <= 50; v++ {
		if d := o.Remove(v); d != 0 {
			t.Fatalf("Remove(%d) distance = %d, want 0 (exact FIFO)", v, d)
		}
	}
	if st := o.Snapshot(); st.Count != 50 || st.Sum != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFIFOOracleDistanceFromFront(t *testing.T) {
	var o FIFOOracle
	o.Insert(1)
	o.Insert(2)
	o.Insert(3) // list: 1 2 3 (1 at front)
	if d := o.Remove(3); d != 2 {
		t.Fatalf("Remove(3) = %d, want 2", d)
	}
	if d := o.Remove(1); d != 0 {
		t.Fatalf("Remove(1) = %d, want 0", d)
	}
	// Removing the tail keeps the tail pointer consistent.
	if d := o.Remove(2); d != 0 {
		t.Fatalf("Remove(2) = %d, want 0", d)
	}
	o.Insert(9)
	if o.Len() != 1 {
		t.Fatalf("Len = %d after reuse, want 1", o.Len())
	}
}

func TestFIFOOracleWaitsForLateInsert(t *testing.T) {
	var o FIFOOracle
	done := make(chan int)
	go func() { done <- o.Remove(42) }()
	o.Insert(42)
	if d := <-done; d != 0 {
		t.Fatalf("late-insert Remove distance = %d", d)
	}
}

func TestFIFOOracleConcurrent(t *testing.T) {
	var o FIFOOracle
	const workers, perW = 8, 1500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * perW
			for i := uint64(0); i < perW; i++ {
				o.Insert(base + i)
				o.Remove(base + i)
			}
		}(w)
	}
	wg.Wait()
	if o.Len() != 0 {
		t.Fatalf("Len = %d, want 0", o.Len())
	}
	if st := o.Snapshot(); st.Count != workers*perW {
		t.Fatalf("Count = %d, want %d", st.Count, workers*perW)
	}
}

func TestRemoveWithinTimesOutOnAbsentLabel(t *testing.T) {
	var o Oracle
	o.Insert(1)
	o.Insert(2)
	if _, err := o.RemoveWithin(99, 20*time.Millisecond); err == nil {
		t.Fatal("RemoveWithin on a never-inserted label must fail")
	} else {
		msg := err.Error()
		if !strings.Contains(msg, "label 99") || !strings.Contains(msg, "2 labels resident") {
			t.Fatalf("diagnostic should name the label and the population, got: %v", err)
		}
	}
	// The miss must not perturb the list or the stats.
	if o.Len() != 2 {
		t.Fatalf("Len = %d after a timed-out Remove, want 2", o.Len())
	}
	if st := o.Snapshot(); st.Count != 0 {
		t.Fatalf("Count = %d after a timed-out Remove, want 0", st.Count)
	}
}

func TestFIFORemoveWithinTimesOutOnAbsentLabel(t *testing.T) {
	var o FIFOOracle
	o.Insert(1)
	if _, err := o.RemoveWithin(99, 20*time.Millisecond); err == nil {
		t.Fatal("RemoveWithin on a never-inserted label must fail")
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d after a timed-out Remove, want 1", o.Len())
	}
}

