// Package quality measures relaxation error exactly the way the paper's
// Section 4 does: a sequential linked list runs alongside the stack under
// test; every successful Push inserts the item's unique label at the head
// of the list, every successful Pop searches the list for the popped label,
// removes it, and records its distance from the head. That distance is the
// "error distance from the LIFO semantics"; a strict stack always scores 0.
//
// The list is guarded by a mutex (it is the measurement instrument, not the
// system under test), but the stack operations themselves run unlocked, so
// concurrency-induced reordering is captured. A Pop may observe a label
// whose Push has completed on the stack but whose list insert has not yet
// run; Remove spins briefly for it — the insert is guaranteed to arrive
// because the pushing goroutine has already returned from the stack
// operation.
package quality

import (
	"math/bits"
	"runtime"
	"sync"
)

// entry is a node of the oracle's sequential list.
type entry struct {
	label uint64
	next  *entry
}

// Oracle is the sequential side-list. The zero value is ready to use.
// All methods are safe for concurrent use.
type Oracle struct {
	mu   sync.Mutex
	head *entry
	n    int

	stats Stats
}

// Stats accumulates the error-distance distribution of one run.
type Stats struct {
	Count uint64  // number of measured pops
	Sum   float64 // sum of distances
	Max   int
	// Hist buckets distances by bit length: bucket i counts distances d
	// with bits.Len(d) == i, i.e. bucket 0 holds exact-LIFO pops (d = 0),
	// bucket 1 holds d = 1, bucket 2 holds 2..3, bucket 3 holds 4..7, ...
	Hist [33]uint64
}

// Mean returns the mean error distance (the paper's quality metric).
func (s Stats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Insert records a pushed label at the head of the list.
func (o *Oracle) Insert(label uint64) {
	e := &entry{label: label}
	o.mu.Lock()
	e.next = o.head
	o.head = e
	o.n++
	o.mu.Unlock()
}

// Remove deletes label from the list and records its distance from the
// head. It spins until the label appears (see package comment); it returns
// the observed distance.
func (o *Oracle) Remove(label uint64) int {
	for {
		o.mu.Lock()
		dist := 0
		var prev *entry
		for e := o.head; e != nil; e = e.next {
			if e.label == label {
				if prev == nil {
					o.head = e.next
				} else {
					prev.next = e.next
				}
				o.n--
				o.stats.Count++
				o.stats.Sum += float64(dist)
				if dist > o.stats.Max {
					o.stats.Max = dist
				}
				o.stats.Hist[bits.Len(uint(dist))]++
				o.mu.Unlock()
				return dist
			}
			prev = e
			dist++
		}
		// Label not present yet: its Push has linearized on the stack but
		// the pusher has not reached Insert. Yield and retry.
		o.mu.Unlock()
		runtime.Gosched()
	}
}

// Len returns the current list population.
func (o *Oracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Snapshot returns a copy of the accumulated statistics.
func (o *Oracle) Snapshot() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// FIFOOracle is the queue counterpart of Oracle: Insert appends at the
// tail (enqueue order), Remove searches from the head and records the
// distance from the front — the error distance from FIFO semantics used by
// the 2D-Queue extension experiments. The zero value is ready to use.
type FIFOOracle struct {
	mu   sync.Mutex
	head *entry
	tail *entry
	n    int

	stats Stats
}

// Insert records an enqueued label at the tail of the list.
func (o *FIFOOracle) Insert(label uint64) {
	e := &entry{label: label}
	o.mu.Lock()
	if o.tail == nil {
		o.head = e
	} else {
		o.tail.next = e
	}
	o.tail = e
	o.n++
	o.mu.Unlock()
}

// Remove deletes label and records its distance from the head (0 = exact
// FIFO). Like Oracle.Remove it spins until the label's insert arrives.
func (o *FIFOOracle) Remove(label uint64) int {
	for {
		o.mu.Lock()
		dist := 0
		var prev *entry
		for e := o.head; e != nil; e = e.next {
			if e.label == label {
				if prev == nil {
					o.head = e.next
				} else {
					prev.next = e.next
				}
				if e == o.tail {
					o.tail = prev
				}
				o.n--
				o.stats.Count++
				o.stats.Sum += float64(dist)
				if dist > o.stats.Max {
					o.stats.Max = dist
				}
				o.stats.Hist[bits.Len(uint(dist))]++
				o.mu.Unlock()
				return dist
			}
			prev = e
			dist++
		}
		o.mu.Unlock()
		runtime.Gosched()
	}
}

// Len returns the current list population.
func (o *FIFOOracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Snapshot returns a copy of the accumulated statistics.
func (o *FIFOOracle) Snapshot() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}
