// Package quality measures relaxation error exactly the way the paper's
// Section 4 does: a sequential linked list runs alongside the stack under
// test; every successful Push inserts the item's unique label at the head
// of the list, every successful Pop searches the list for the popped label,
// removes it, and records its distance from the head. That distance is the
// "error distance from the LIFO semantics"; a strict stack always scores 0.
//
// The list is guarded by a mutex (it is the measurement instrument, not the
// system under test), but the stack operations themselves run unlocked, so
// concurrency-induced reordering is captured. A Pop may observe a label
// whose Push has completed on the stack but whose list insert has not yet
// run; Remove spins briefly for it — the insert is guaranteed to arrive
// because the pushing goroutine has already returned from the stack
// operation.
package quality

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"time"
)

// DefaultPatience bounds how long Remove waits for a racing Insert before
// declaring the history broken. The legitimate wait is one preempted
// goroutine's reschedule (the pusher has already returned from the stack
// op), so seconds of patience separates that from a genuinely absent label
// — a lost item, a duplicated pop, or a mislabeled harness — by orders of
// magnitude.
const DefaultPatience = 5 * time.Second

// entry is a node of the oracle's sequential list.
type entry struct {
	label uint64
	next  *entry
}

// Oracle is the sequential side-list. The zero value is ready to use.
// All methods are safe for concurrent use.
type Oracle struct {
	mu   sync.Mutex
	head *entry
	n    int

	stats Stats
}

// Stats accumulates the error-distance distribution of one run.
type Stats struct {
	Count uint64  // number of measured pops
	Sum   float64 // sum of distances
	Max   int
	// Hist buckets distances by bit length: bucket i counts distances d
	// with bits.Len(d) == i, i.e. bucket 0 holds exact-LIFO pops (d = 0),
	// bucket 1 holds d = 1, bucket 2 holds 2..3, bucket 3 holds 4..7, ...
	Hist [33]uint64
}

// Mean returns the mean error distance (the paper's quality metric).
func (s Stats) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// ExceedsMax returns a predicate over snapshots that holds when the
// realised maximum rank error exceeds bound — the quality-side failure
// predicate for the schedule shrinker (internal/director): minimise a
// schedule while the oracle still measures an error above the bound.
func ExceedsMax(bound int) func(Stats) bool {
	return func(s Stats) bool { return s.Max > bound }
}

// Insert records a pushed label at the head of the list.
func (o *Oracle) Insert(label uint64) {
	e := &entry{label: label}
	o.mu.Lock()
	e.next = o.head
	o.head = e
	o.n++
	o.mu.Unlock()
}

// Remove deletes label from the list and records its distance from the
// head. It waits up to DefaultPatience for the label's racing Insert (see
// package comment) and panics with a diagnostic if it never arrives — an
// out-of-sync label is a harness or structure bug, and a loud immediate
// failure beats a silent test timeout.
func (o *Oracle) Remove(label uint64) int {
	d, err := o.RemoveWithin(label, DefaultPatience)
	if err != nil {
		panic(err)
	}
	return d
}

// RemoveWithin is Remove with an explicit patience bound, returning a
// diagnostic error instead of panicking when the label never appears.
func (o *Oracle) RemoveWithin(label uint64, patience time.Duration) (int, error) {
	// The deadline is armed lazily: the hit path never reads the clock.
	var deadline time.Time
	for {
		o.mu.Lock()
		dist := 0
		var prev *entry
		for e := o.head; e != nil; e = e.next {
			if e.label == label {
				if prev == nil {
					o.head = e.next
				} else {
					prev.next = e.next
				}
				o.n--
				o.stats.Count++
				o.stats.Sum += float64(dist)
				if dist > o.stats.Max {
					o.stats.Max = dist
				}
				o.stats.Hist[bits.Len(uint(dist))]++
				o.mu.Unlock()
				return dist, nil
			}
			prev = e
			dist++
		}
		// Label not present yet: its Push has linearized on the stack but
		// the pusher has not reached Insert. Yield and retry, up to the
		// patience bound.
		n := o.n
		o.mu.Unlock()
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(patience)
		} else if now.After(deadline) {
			return 0, fmt.Errorf("quality: label %d never inserted (waited %v, %d labels resident): lost item, duplicated pop, or mislabeled harness", label, patience, n)
		}
		runtime.Gosched()
	}
}

// Len returns the current list population.
func (o *Oracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Snapshot returns a copy of the accumulated statistics.
func (o *Oracle) Snapshot() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}

// FIFOOracle is the queue counterpart of Oracle: Insert appends at the
// tail (enqueue order), Remove searches from the head and records the
// distance from the front — the error distance from FIFO semantics used by
// the 2D-Queue extension experiments. The zero value is ready to use.
type FIFOOracle struct {
	mu   sync.Mutex
	head *entry
	tail *entry
	n    int

	stats Stats
}

// Insert records an enqueued label at the tail of the list.
func (o *FIFOOracle) Insert(label uint64) {
	e := &entry{label: label}
	o.mu.Lock()
	if o.tail == nil {
		o.head = e
	} else {
		o.tail.next = e
	}
	o.tail = e
	o.n++
	o.mu.Unlock()
}

// Remove deletes label and records its distance from the head (0 = exact
// FIFO). Like Oracle.Remove it waits up to DefaultPatience for the label's
// racing Insert and panics with a diagnostic if it never arrives.
func (o *FIFOOracle) Remove(label uint64) int {
	d, err := o.RemoveWithin(label, DefaultPatience)
	if err != nil {
		panic(err)
	}
	return d
}

// RemoveWithin is Remove with an explicit patience bound, returning a
// diagnostic error instead of panicking when the label never appears.
func (o *FIFOOracle) RemoveWithin(label uint64, patience time.Duration) (int, error) {
	var deadline time.Time
	for {
		o.mu.Lock()
		dist := 0
		var prev *entry
		for e := o.head; e != nil; e = e.next {
			if e.label == label {
				if prev == nil {
					o.head = e.next
				} else {
					prev.next = e.next
				}
				if e == o.tail {
					o.tail = prev
				}
				o.n--
				o.stats.Count++
				o.stats.Sum += float64(dist)
				if dist > o.stats.Max {
					o.stats.Max = dist
				}
				o.stats.Hist[bits.Len(uint(dist))]++
				o.mu.Unlock()
				return dist, nil
			}
			prev = e
			dist++
		}
		n := o.n
		o.mu.Unlock()
		now := time.Now()
		if deadline.IsZero() {
			deadline = now.Add(patience)
		} else if now.After(deadline) {
			return 0, fmt.Errorf("quality: label %d never inserted (waited %v, %d labels resident): lost item, duplicated pop, or mislabeled harness", label, patience, n)
		}
		runtime.Gosched()
	}
}

// Len returns the current list population.
func (o *FIFOOracle) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Snapshot returns a copy of the accumulated statistics.
func (o *FIFOOracle) Snapshot() Stats {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.stats
}
