package pad

import (
	"testing"
	"unsafe"
)

func TestCacheLinePadSize(t *testing.T) {
	if got := unsafe.Sizeof(CacheLinePad{}); got != CacheLineSize {
		t.Fatalf("CacheLinePad is %d bytes, want %d", got, CacheLineSize)
	}
}

func TestPointerLineFillsALine(t *testing.T) {
	if got := unsafe.Sizeof(PointerLine[int]{}); got != CacheLineSize {
		t.Fatalf("PointerLine is %d bytes, want %d", got, CacheLineSize)
	}
}

func TestInt64LineFillsALine(t *testing.T) {
	if got := unsafe.Sizeof(Int64Line{}); got != CacheLineSize {
		t.Fatalf("Int64Line is %d bytes, want %d", got, CacheLineSize)
	}
}

func TestUint64LineFillsALine(t *testing.T) {
	if got := unsafe.Sizeof(Uint64Line{}); got != CacheLineSize {
		t.Fatalf("Uint64Line is %d bytes, want %d", got, CacheLineSize)
	}
}

func TestSliceOfLinesSeparatesElements(t *testing.T) {
	// Adjacent slice elements must start exactly one cache line apart, so
	// no two atomics share a line.
	lines := make([]PointerLine[int], 4)
	for i := 1; i < len(lines); i++ {
		a := uintptr(unsafe.Pointer(&lines[i-1]))
		b := uintptr(unsafe.Pointer(&lines[i]))
		if b-a != CacheLineSize {
			t.Fatalf("elements %d and %d are %d bytes apart, want %d", i-1, i, b-a, CacheLineSize)
		}
	}
}

func TestLinesAreUsableAtomics(t *testing.T) {
	var p PointerLine[int]
	v := 7
	p.P.Store(&v)
	if got := p.P.Load(); got == nil || *got != 7 {
		t.Fatal("PointerLine atomic does not round-trip")
	}
	var i Int64Line
	i.V.Store(-3)
	if i.V.Add(5) != 2 {
		t.Fatal("Int64Line atomic arithmetic broken")
	}
	var u Uint64Line
	if u.V.Add(9) != 9 {
		t.Fatal("Uint64Line atomic arithmetic broken")
	}
}
