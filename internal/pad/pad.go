// Package pad provides cache-line padding helpers used to avoid false
// sharing between adjacent atomic fields.
//
// The 2D-Stack keeps one descriptor pointer per sub-stack in a contiguous
// array; without padding, CAS traffic on one sub-stack would invalidate the
// cache line holding its neighbours and silently serialise "disjoint"
// operations. The paper's design depends on those accesses being truly
// disjoint, so every per-sub-stack slot is padded to a full cache line.
package pad

import "sync/atomic"

// CacheLineSize is the assumed size in bytes of a CPU cache line.
// 64 is correct for all contemporary x86-64 and most ARM64 parts; using a
// constant keeps the arrays allocatable without runtime probing.
const CacheLineSize = 64

// CacheLinePad occupies exactly one cache line. Embed it between fields that
// must not share a line.
type CacheLinePad struct{ _ [CacheLineSize]byte }

// PointerLine is an atomic.Pointer padded to a full cache line so that a
// slice of PointerLine places each pointer on its own line.
type PointerLine[T any] struct {
	P atomic.Pointer[T]
	_ [CacheLineSize - 8]byte
}

// Int64Line is an atomic.Int64 padded to a full cache line.
type Int64Line struct {
	V atomic.Int64
	_ [CacheLineSize - 8]byte
}

// Uint64Line is an atomic.Uint64 padded to a full cache line.
type Uint64Line struct {
	V atomic.Uint64
	_ [CacheLineSize - 8]byte
}
