package sim

import "testing"

func TestModelShrinkHandoffValidation(t *testing.T) {
	m := DefaultMachine()
	bad := []struct {
		oldW, newW   int
		depth, shift int64
	}{
		{2, 2, 8, 8},  // not a shrink
		{1, 2, 8, 8},  // growth
		{8, 0, 8, 8},  // no survivors
		{8, 2, 8, 16}, // shift > depth
		{8, 2, 0, 1},  // bad depth
	}
	for _, c := range bad {
		if _, err := ModelShrinkHandoff(m, HandoffStack, c.oldW, c.newW, c.depth, c.shift, 100, 100); err == nil {
			t.Fatalf("accepted invalid handoff %+v", c)
		}
	}
}

// TestModelShrinkHandoffWin pins the modelled advantage of the warm
// handoff over the retired funnel migration, for both structures, on the
// paper's machine model: cheaper in cycles, zero window moves (the funnel's
// k-spike mechanism), and no worse in displacement.
func TestModelShrinkHandoffWin(t *testing.T) {
	m := DefaultMachine()
	for _, hs := range []HandoffStructure{HandoffStack, HandoffQueue} {
		for _, c := range []struct {
			oldW, newW     int
			live, stranded int64
		}{
			{8, 2, 1000, 3000},
			{64, 16, 32768, 24576},
			{4, 1, 100, 300},
		} {
			hm, err := ModelShrinkHandoff(m, hs, c.oldW, c.newW, 64, 64, c.live, c.stranded)
			if err != nil {
				t.Fatal(err)
			}
			if hm.WarmCycles >= hm.FunnelCycles {
				t.Fatalf("structure %d %+v: warm %d cycles not under funnel %d", hs, c, hm.WarmCycles, hm.FunnelCycles)
			}
			if hm.FunnelWindowMoves <= 0 {
				t.Fatalf("structure %d %+v: funnel modelled zero window moves", hs, c)
			}
			if hm.WarmWindowMoves != 1 {
				t.Fatalf("structure %d %+v: warm modelled %d window moves, want the single batched raise", hs, c, hm.WarmWindowMoves)
			}
			if hm.FunnelWindowMoves < hm.WarmWindowMoves {
				t.Fatalf("structure %d %+v: funnel window moves %d below warm %d", hs, c, hm.FunnelWindowMoves, hm.WarmWindowMoves)
			}
			if hm.WarmDisplacement > hm.FunnelDisplacement {
				t.Fatalf("structure %d %+v: warm displacement %d above funnel %d",
					hs, c, hm.WarmDisplacement, hm.FunnelDisplacement)
			}
		}
	}
}

// TestModelShrinkHandoffScales: funnel cost grows with the stranded
// population faster than warm cost does for the stack (whose splices are
// per-slot, not per-item).
func TestModelShrinkHandoffScales(t *testing.T) {
	m := DefaultMachine()
	small, err := ModelShrinkHandoff(m, HandoffStack, 8, 2, 64, 64, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := ModelShrinkHandoff(m, HandoffStack, 8, 2, 64, 64, 1000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	funnelGrowth := float64(big.FunnelCycles) / float64(small.FunnelCycles)
	warmGrowth := float64(big.WarmCycles) / float64(small.WarmCycles)
	if funnelGrowth <= warmGrowth {
		t.Fatalf("funnel growth %.1fx not above warm growth %.1fx over a 10x stranded population",
			funnelGrowth, warmGrowth)
	}
}
