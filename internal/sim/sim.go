// Package sim is a deterministic discrete-event simulator of threads
// executing atomic operations against a NUMA cache-coherence cost model.
//
// Why it exists: the paper's evaluation runs on a 2-socket, 16-core Xeon,
// where the dominant effect is cache-line ping-pong — a CAS on a line last
// written by another core stalls for a coherence transfer, and the stall is
// larger across sockets. The container this reproduction was developed in
// exposes a single hardware thread, so that effect cannot occur natively;
// per the substitution rule (DESIGN.md §3) this package simulates it,
// letting the benchmark suite recover the *shape* of the paper's
// throughput results (which design wins under contention, where the
// inter-socket cliff falls) even though wall-clock measurements here
// cannot.
//
// # Model
//
// Memory is a set of Words, each living on its own cache line. Every line
// tracks a version (bumped on write) and its last writer. Each simulated
// thread keeps the version it last observed per line:
//
//   - an access to a line whose version the thread has already observed
//     costs LocalCost (cache hit);
//   - otherwise it costs IntraSocketCost or InterSocketCost depending on
//     the distance to the last writer (coherence transfer), after which
//     the thread has the line cached.
//
// Writes and CASes additionally take exclusive ownership (bump the
// version), invalidating every other thread's cached copy — exactly the
// MESI behaviour that serialises hot-spot data structures.
//
// Threads are goroutines executing real algorithm code against sim.Word
// values; a lockstep scheduler always runs the thread with the smallest
// local clock, so executions are deterministic, interleaved at memory-
// access granularity, and CAS failures arise organically from the
// interleaving rather than from a probabilistic model.
package sim

import "fmt"

// Machine describes the simulated topology and cost model (cycles).
type Machine struct {
	Sockets         int
	CoresPerSocket  int
	LocalCost       int64 // cache hit
	IntraSocketCost int64 // line transfer from a core on the same socket
	InterSocketCost int64 // line transfer across sockets
	ComputePerOp    int64 // fixed per-operation local work (instruction cost)
}

// DefaultMachine models the paper's testbed: two sockets, eight cores
// each, with conventional latency ratios (hit 1, intra-socket ~40,
// inter-socket ~100 cycles).
func DefaultMachine() Machine {
	return Machine{
		Sockets:         2,
		CoresPerSocket:  8,
		LocalCost:       1,
		IntraSocketCost: 40,
		InterSocketCost: 100,
		ComputePerOp:    30,
	}
}

// Validate reports whether the machine description is usable.
func (m Machine) Validate() error {
	switch {
	case m.Sockets < 1 || m.CoresPerSocket < 1:
		return fmt.Errorf("sim: need at least one socket and one core, got %d/%d", m.Sockets, m.CoresPerSocket)
	case m.LocalCost < 1 || m.IntraSocketCost < m.LocalCost || m.InterSocketCost < m.IntraSocketCost:
		return fmt.Errorf("sim: costs must satisfy 1 <= local <= intra <= inter")
	case m.ComputePerOp < 0:
		return fmt.Errorf("sim: ComputePerOp must be >= 0")
	}
	return nil
}

// Cores returns the total core count.
func (m Machine) Cores() int { return m.Sockets * m.CoresPerSocket }

// Word is one simulated memory word on a private cache line.
type Word struct {
	id         int
	value      int64
	version    uint64
	lastWriter int   // core id, -1 when untouched
	readyAt    int64 // earliest cycle the next exclusive access may start
	home       int   // socket whose memory holds the line, -1 = uniform
}

// Sim owns the simulated machine, words and threads. Create with New, add
// threads with Go, then call Run.
type Sim struct {
	machine Machine
	words   []*Word
	threads []*thread
	horizon int64
}

// New returns an empty simulation on the given machine.
func New(machine Machine) (*Sim, error) {
	if err := machine.Validate(); err != nil {
		return nil, err
	}
	return &Sim{machine: machine}, nil
}

// MustNew is New that panics on an invalid machine.
func MustNew(machine Machine) *Sim {
	s, err := New(machine)
	if err != nil {
		panic(err)
	}
	return s
}

// NewWord allocates a word initialised to v on its own cache line, with no
// NUMA home (untouched-line fetches cost LocalCost regardless of socket).
func (s *Sim) NewWord(v int64) *Word {
	return s.NewWordOn(v, -1)
}

// NewWordOn allocates a word homed on the given socket's memory: while no
// core has written the line, a fetch from a remote socket pays the
// inter-socket transfer cost (a remote-node DRAM/directory fetch) instead
// of LocalCost — the placement-dependent cost per slot that makes slot
// homes matter to the model even before the first CAS. Once written, the
// usual last-writer coherence costs take over. Pass socket -1 for a
// homeless word (equivalent to NewWord).
func (s *Sim) NewWordOn(v int64, socket int) *Word {
	if socket >= s.machine.Sockets {
		socket = s.machine.Sockets - 1
	}
	w := &Word{id: len(s.words), value: v, lastWriter: -1, home: socket}
	s.words = append(s.words, w)
	return w
}

// thread is the scheduler-side state of one simulated thread.
type thread struct {
	id     int
	core   int
	socket int
	clock  int64
	cached map[int]uint64 // word id -> version last observed
	resume chan struct{}
	parked chan struct{} // signalled when the thread yields back
	done   bool          // thread function returned
	ops    int64         // completed operations (via T.OpDone)
}

// T is the handle a simulated thread's body uses to access memory. All
// methods must be called only from inside the body function.
type T struct {
	s  *Sim
	th *thread
}

// Go adds a simulated thread pinned to the given core (cores are assigned
// round-robin per socket: core c lives on socket c / CoresPerSocket,
// mirroring the paper's fill-one-socket-first pinning). The body runs when
// Run is called.
func (s *Sim) Go(core int, body func(t *T)) {
	th := &thread{
		id:     len(s.threads),
		core:   core,
		socket: core / s.machine.CoresPerSocket,
		cached: make(map[int]uint64),
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.threads = append(s.threads, th)
	go func() {
		<-th.resume // wait for first scheduling
		body(&T{s: s, th: th})
		th.done = true
		th.parked <- struct{}{}
	}()
}

// Run executes the simulation until every thread's clock reaches horizon
// (threads observe this via T.Running) and every body has returned. It
// returns the per-thread completed-operation counts.
func (s *Sim) Run(horizon int64) []int64 {
	s.horizon = horizon
	live := len(s.threads)
	for live > 0 {
		// Pick the live thread with the smallest clock (deterministic
		// tie-break by id).
		var next *thread
		for _, th := range s.threads {
			if th.done {
				continue
			}
			if next == nil || th.clock < next.clock {
				next = th
			}
		}
		if next == nil {
			break
		}
		next.resume <- struct{}{}
		<-next.parked
		if next.done {
			live--
		}
	}
	ops := make([]int64, len(s.threads))
	for i, th := range s.threads {
		ops[i] = th.ops
	}
	return ops
}

// yield hands control back to the scheduler after charging cost.
func (t *T) yield(cost int64) {
	t.th.clock += cost
	t.th.parked <- struct{}{}
	<-t.th.resume
}

// transferCost is the coherence cost of fetching w's line from its last
// writer (LocalCost when untouched or same-core); an untouched line homed
// on another socket instead costs the inter-socket transfer (remote memory
// fetch — see NewWordOn).
func (t *T) transferCost(w *Word) int64 {
	m := t.s.machine
	if w.lastWriter < 0 {
		if w.home >= 0 && w.home != t.th.socket {
			return m.InterSocketCost
		}
		return m.LocalCost
	}
	if w.lastWriter == t.th.core {
		return m.LocalCost
	}
	if w.lastWriter/m.CoresPerSocket == t.th.socket {
		return m.IntraSocketCost
	}
	return m.InterSocketCost
}

// yieldRead charges a read access: a cache hit costs LocalCost; a miss is
// a coherence transfer. Reads do not serialise on the line (shared state).
func (t *T) yieldRead(w *Word) {
	m := t.s.machine
	if v, ok := t.th.cached[w.id]; ok && v == w.version {
		t.yield(m.LocalCost)
		return
	}
	start := t.th.clock
	if w.readyAt > start {
		start = w.readyAt // wait out an in-flight exclusive transfer
	}
	end := start + t.transferCost(w)
	t.yield(end - t.th.clock)
}

// yieldExclusive charges an exclusive (write/CAS) access. Exclusive
// ownership of a line is serialised: each request-for-ownership starts no
// earlier than the line's readyAt and reserves the line until it
// completes. This is the mechanism that makes a single hot CAS word a
// scalability bottleneck — exactly the effect the paper's design avoids.
func (t *T) yieldExclusive(w *Word) {
	m := t.s.machine
	cost := t.transferCost(w)
	if v, ok := t.th.cached[w.id]; ok && v == w.version && w.lastWriter == t.th.core {
		cost = m.LocalCost // already held in modified state
	}
	start := t.th.clock
	if w.readyAt > start {
		start = w.readyAt
	}
	end := start + cost
	w.readyAt = end // reserve the line for the duration of the transfer
	t.yield(end - t.th.clock)
}

// Running reports whether the thread should continue its loop; it becomes
// false once the thread's clock passes the Run horizon.
func (t *T) Running() bool { return t.th.clock < t.s.horizon }

// Clock returns the thread's local time in cycles.
func (t *T) Clock() int64 { return t.th.clock }

// Core returns the core this thread is pinned to.
func (t *T) Core() int { return t.th.core }

// Socket returns the socket of the thread's core (cores fill socket 0
// first, CoresPerSocket cores per socket).
func (t *T) Socket() int { return t.th.socket }

// Read returns w's value, charging the coherence cost.
func (t *T) Read(w *Word) int64 {
	t.yieldRead(w)
	t.th.cached[w.id] = w.version
	return w.value
}

// CAS installs next if w still holds old, charging the exclusive-access
// cost; it reports success. The version bump invalidates all other
// threads' cached copies, and the line reservation serialises competing
// exclusive accesses.
func (t *T) CAS(w *Word, old, next int64) bool {
	t.yieldExclusive(w)
	if w.value != old {
		t.th.cached[w.id] = w.version
		return false
	}
	w.value = next
	w.version++
	w.lastWriter = t.th.core
	t.th.cached[w.id] = w.version
	return true
}

// Write stores v unconditionally (exclusive access).
func (t *T) Write(w *Word, v int64) {
	t.yieldExclusive(w)
	w.value = v
	w.version++
	w.lastWriter = t.th.core
	t.th.cached[w.id] = w.version
}

// Compute charges local work without touching memory.
func (t *T) Compute(cycles int64) {
	if cycles > 0 {
		t.yield(cycles)
	}
}

// OpDone records one completed high-level operation for throughput
// accounting and charges the fixed per-op instruction cost.
func (t *T) OpDone() {
	t.th.ops++
	t.Compute(t.s.machine.ComputePerOp)
}
