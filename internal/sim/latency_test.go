package sim

import "testing"

// TestSegmentsRecordLatency: the instrumented bodies must time every
// completed operation into the TwoDWork histogram, deterministically, so
// the latency-goal controller has a signal in simulation.
func TestSegmentsRecordLatency(t *testing.T) {
	m := DefaultMachine()
	stack, err := TwoDSegment(m, 4, 16, 16, 2, 8, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	queue, err := TwoDQueueSegment(m, 4, 16, 16, 2, 8, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range map[string]TwoDWork{"stack": stack, "queue": queue} {
		var samples uint64
		for _, b := range w.Latency {
			samples += b
		}
		if samples != w.Ops {
			t.Fatalf("%s: %d latency samples for %d ops (every op must be timed)", name, samples, w.Ops)
		}
	}
	// Determinism: the histogram is part of the reproducible segment output.
	again, err := TwoDSegment(m, 4, 16, 16, 2, 8, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Latency != stack.Latency {
		t.Fatal("latency histogram not deterministic across identical segments")
	}
}
