package sim

import (
	"testing"

	"stack2d/internal/core"
)

// TestNewWordOnChargesRemoteHomeFetch: an untouched line homed on the
// other socket costs the inter-socket transfer; a local home costs a hit.
func TestNewWordOnChargesRemoteHomeFetch(t *testing.T) {
	m := DefaultMachine()
	s := MustNew(m)
	local := s.NewWordOn(1, 0)
	remote := s.NewWordOn(2, 1)
	var dLocal, dRemote int64
	s.Go(0, func(t *T) { // core 0 lives on socket 0
		c0 := t.Clock()
		t.Read(local)
		dLocal = t.Clock() - c0
		c0 = t.Clock()
		t.Read(remote)
		dRemote = t.Clock() - c0
	})
	s.Run(1)
	if dLocal != m.LocalCost {
		t.Fatalf("local-homed untouched read cost %d, want %d", dLocal, m.LocalCost)
	}
	if dRemote != m.InterSocketCost {
		t.Fatalf("remote-homed untouched read cost %d, want %d", dRemote, m.InterSocketCost)
	}
}

// TestPlacedSegmentsDeterministic: identical inputs give identical work.
func TestPlacedSegmentsDeterministic(t *testing.T) {
	m := DefaultMachine()
	homes := core.PlaceSlots(core.LocalFirst(), nil, 8, -1, 2)
	a, err := TwoDSegmentPlaced(m, 8, 64, 64, 2, 16, 50000, 7, homes, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoDSegmentPlaced(m, 8, 64, 64, 2, 16, 50000, 7, homes, true)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("placed segment not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestPlacedSegmentValidation rejects malformed home maps.
func TestPlacedSegmentValidation(t *testing.T) {
	m := DefaultMachine()
	if _, err := TwoDSegmentPlaced(m, 4, 8, 8, 2, 2, 1000, 1, []int{0, 1}, true); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := TwoDQueueSegmentPlaced(m, 2, 8, 8, 2, 2, 1000, 1, []int{0, 5}, true); err == nil {
		t.Fatal("out-of-range socket accepted")
	}
}

// TestLocalFirstBeatsBlindUnderContention pins the placement physics the
// adapttune A/B gate relies on: at a contended width (8 slots, 16 threads
// across both sockets), homing slots per socket and probing same-socket
// slots first keeps descriptor ping-pong intra-socket and must win for
// both structures. Fully deterministic.
func TestLocalFirstBeatsBlindUnderContention(t *testing.T) {
	m := DefaultMachine()
	const width, p, horizon = 8, 16, 200000
	localHomes := core.PlaceSlots(core.LocalFirst(), nil, width, -1, 2)
	rrHomes := core.PlaceSlots(core.RoundRobin(), nil, width, -1, 2)
	type segf func(Machine, int, int64, int64, int, int, int64, uint64, []int, bool) (TwoDWork, error)
	for name, seg := range map[string]segf{"stack": TwoDSegmentPlaced, "queue": TwoDQueueSegmentPlaced} {
		blind, err := seg(m, width, 64, 64, 2, p, horizon, 1, rrHomes, false)
		if err != nil {
			t.Fatal(err)
		}
		local, err := seg(m, width, 64, 64, 2, p, horizon, 1, localHomes, true)
		if err != nil {
			t.Fatal(err)
		}
		if local.Ops <= blind.Ops {
			t.Fatalf("%s: local-first %d ops did not beat blind %d ops", name, local.Ops, blind.Ops)
		}
		t.Logf("%s: blind %d ops, local %d ops (%.2fx)", name, blind.Ops, local.Ops,
			float64(local.Ops)/float64(blind.Ops))
	}
}
