package sim

import (
	"fmt"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/xrand"
)

// This file models the 2D-Queue (internal/twodqueue) on the simulated
// multicore machine, the queue counterpart of TwoDSegment in adaptive.go:
// cmd/adapttune -queue runs its convergence demonstration on it, since the
// native container exposes a single hardware thread where real CAS
// contention cannot arise.
//
// The model keeps the structure's coherence-relevant skeleton and drops the
// rest: each sub-queue end is one Word holding its monotonic window counter
// (enqueues or dequeues completed), CAS-incremented by the winning
// operation — the cache-line ping-pong on those counters and on the two
// Global ceilings is what the controller's signals are made of. The
// Michael–Scott list bodies are not modelled, and the queue is treated as
// heavily prefilled (a dequeue always finds an item), matching the
// prefilled native harness runs.

// twoDQueueInstrumentedBody simulates one thread of the 2D-Queue with work
// counters accumulated into w. Enqueue-end and dequeue-end window moves are
// both counted in WindowMoves. Unlike the stack body there is no depth
// parameter: both ends' validity is simply counter < ceiling (depth only
// sizes the initial ceilings, in TwoDQueueSegment).
func twoDQueueInstrumentedBody(enqs, deqs []*Word, globalEnq, globalDeq *Word, shift int64, randomHops int, seed uint64, homes []int, localProbe bool, w *TwoDWork) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(enqs)
		sock := t.Socket()
		sockIdx := sock % core.MaxPlacementSockets
		// Both ends share the slot homes, so one probe plan serves enqueue
		// and dequeue searches (see probePlan in adaptive.go).
		ord, pos, localN := probePlan(homes, sock, rng.Intn(len(homes)+1), localProbe)
		hop := func() int {
			if ord == nil || localN == 0 {
				return rng.Intn(width)
			}
			return ord[rng.Intn(localN)]
		}
		anchorE := rng.Intn(width)
		anchorD := rng.Intn(width)
		for t.Running() {
			enq := rng.Bool()
			opStart := t.Clock()
			subs, global, anchor := deqs, globalDeq, &anchorD
			if enq {
				subs, global, anchor = enqs, globalEnq, &anchorE
			}
			for t.Running() {
				g := t.Read(global)
				idx := *anchor
				at := 0
				if ord != nil {
					at = pos[idx]
				}
				probes := 0
				randLeft := randomHops
				done := false
				for probes < width && t.Running() {
					c := t.Read(subs[idx])
					w.Probes++
					if c < g {
						if t.CAS(subs[idx], c, c+1) {
							*anchor = idx
							done = true
							break
						}
						w.CASFailures++
						w.SocketCAS[sockIdx]++
						idx = hop()
						if ord != nil {
							at = pos[idx]
						}
						probes = 0
						randLeft = 0
						continue
					}
					if randLeft > 0 {
						randLeft--
						idx = hop()
						if ord != nil {
							at = pos[idx]
						}
						continue
					}
					probes++
					if ord == nil {
						idx++
						if idx == width {
							idx = 0
						}
					} else {
						at++
						if at == width {
							at = 0
						}
						idx = ord[at]
					}
				}
				if done {
					if enq {
						w.Pushes++
					} else {
						w.Pops++
					}
					break
				}
				// Full coverage at the ceiling: raise this end's window.
				w.WindowMoves++
				t.CAS(global, g, g+shift)
			}
			w.Ops++
			w.Latency[core.LatencyBucket(time.Duration(t.Clock()-opStart))]++
			t.OpDone()
		}
	}
}

// TwoDQueueSegment runs one simulated segment: p threads execute the
// 2D-Queue at the given geometry for horizon cycles on machine, returning
// the summed instrumented work. Deterministic for fixed inputs.
// Placement-blind; see TwoDQueueSegmentPlaced.
func TwoDQueueSegment(machine Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64) (TwoDWork, error) {
	return TwoDQueueSegmentPlaced(machine, width, depth, shift, randomHops, p, horizon, seed, nil, false)
}

// TwoDQueueSegmentPlaced is TwoDQueueSegment with NUMA placement, the
// queue counterpart of TwoDSegmentPlaced: homes maps each sub-queue slot
// to the socket holding both of its counter lines, and localProbe selects
// the socket-aware search on both ends.
func TwoDQueueSegmentPlaced(machine Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64, homes []int, localProbe bool) (TwoDWork, error) {
	switch {
	case width < 1:
		return TwoDWork{}, errRange("width", width)
	case depth < 1 || shift < 1 || shift > depth:
		return TwoDWork{}, fmt.Errorf("sim: bad window depth=%d shift=%d", depth, shift)
	case randomHops < 0:
		return TwoDWork{}, errRange("randomHops", randomHops)
	case p < 1 || p > machine.Cores():
		return TwoDWork{}, errRange("p", p)
	case horizon <= 0:
		return TwoDWork{}, errRange("horizon", int(horizon))
	}
	if err := validatePlacement(machine, width, homes); err != nil {
		return TwoDWork{}, err
	}
	s, err := New(machine)
	if err != nil {
		return TwoDWork{}, err
	}
	// Counters start at zero; the ceilings open half a window of headroom,
	// as TwoDSegment does relative to its prefill.
	g0 := depth / 2
	if g0 < 1 {
		g0 = 1
	}
	enqs := make([]*Word, width)
	deqs := make([]*Word, width)
	for i := range enqs {
		if homes != nil {
			enqs[i] = s.NewWordOn(0, homes[i])
			deqs[i] = s.NewWordOn(0, homes[i])
		} else {
			enqs[i] = s.NewWord(0)
			deqs[i] = s.NewWord(0)
		}
	}
	globalEnq := s.NewWord(g0)
	globalDeq := s.NewWord(g0)
	work := make([]TwoDWork, p)
	for c := 0; c < p; c++ {
		s.Go(c, twoDQueueInstrumentedBody(enqs, deqs, globalEnq, globalDeq, shift, randomHops, seed, homes, localProbe, &work[c]))
	}
	s.Run(horizon)
	var total TwoDWork
	for _, w := range work {
		total.add(w)
	}
	return total, nil
}
