package sim

import (
	"fmt"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/xrand"
)

// This file supports the adaptive relaxation controller (internal/adapt):
// an instrumented variant of TwoDBody that counts the controller's input
// signals — probes, CAS failures, window moves — so the controller can be
// driven against the simulated multicore machine. The native container
// this reproduction targets exposes a single hardware thread, where real
// CAS contention cannot arise; the simulation recovers the coherence
// behaviour of the paper's 16-core testbed deterministically, which is
// what cmd/adapttune's convergence demonstration runs on.

// TwoDWork aggregates one simulated segment's instrumented counters,
// mirroring the fields of core.OpStats the controller consumes.
type TwoDWork struct {
	Ops         uint64 // completed operations
	Pushes      uint64
	Pops        uint64 // pops returning a value
	EmptyPops   uint64
	Probes      uint64 // sub-stack validity checks
	CASFailures uint64 // failed descriptor CASes (contention)
	WindowMoves uint64 // Global shift CAS attempts after exhausted windows

	// Latency is the per-operation duration histogram, in simulated cycles
	// read as nanoseconds, bucketed with core.LatencyBucket so it folds
	// directly into a core.OpStats — the latency-goal controller sees the
	// same signal shape natively and in simulation. Every simulated
	// operation is recorded (sampling exists to keep the native hot path
	// cheap; the simulator has no such constraint).
	Latency [core.NumLatencyBuckets]uint64
}

// add folds other into w, field-wise.
func (w *TwoDWork) add(other TwoDWork) {
	w.Ops += other.Ops
	w.Pushes += other.Pushes
	w.Pops += other.Pops
	w.EmptyPops += other.EmptyPops
	w.Probes += other.Probes
	w.CASFailures += other.CASFailures
	w.WindowMoves += other.WindowMoves
	for i := range w.Latency {
		w.Latency[i] += other.Latency[i]
	}
}

// twoDInstrumentedBody is TwoDBody with work counters accumulated into w.
// Each simulated thread owns its distinct w; sum after Run.
func twoDInstrumentedBody(subs []*Word, global *Word, depth, shift int64, randomHops int, seed uint64, w *TwoDWork) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(subs)
		anchor := rng.Intn(width)
		for t.Running() {
			push := rng.Bool()
			opStart := t.Clock()
			for t.Running() {
				g := t.Read(global)
				idx := anchor
				probes := 0
				randLeft := randomHops
				done := false
				empty := true
				for probes < width && t.Running() {
					c := t.Read(subs[idx])
					w.Probes++
					valid := c < g
					if !push {
						valid = c > g-depth
					}
					if valid {
						delta := int64(1)
						if !push {
							delta = -1
						}
						if t.CAS(subs[idx], c, c+delta) {
							anchor = idx
							done = true
							break
						}
						w.CASFailures++
						idx = rng.Intn(width)
						probes = 0
						randLeft = 0
						continue
					}
					if c != 0 {
						empty = false
					}
					if randLeft > 0 {
						randLeft--
						idx = rng.Intn(width)
						continue
					}
					probes++
					idx++
					if idx == width {
						idx = 0
					}
				}
				if done {
					if push {
						w.Pushes++
					} else {
						w.Pops++
					}
					break
				}
				if !push && g == depth && empty {
					w.EmptyPops++
					break
				}
				w.WindowMoves++
				if push {
					t.CAS(global, g, g+shift)
				} else {
					next := g - shift
					if next < depth {
						next = depth
					}
					t.CAS(global, g, next)
				}
			}
			w.Ops++
			w.Latency[core.LatencyBucket(time.Duration(t.Clock()-opStart))]++
			t.OpDone()
		}
	}
}

// TwoDSegment runs one simulated segment: p threads execute the 2D-Stack
// at the given geometry for horizon cycles on machine, prefilled so pops
// rarely observe empty (as in the figure harnesses). It returns the summed
// instrumented work. Deterministic for fixed inputs.
func TwoDSegment(machine Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64) (TwoDWork, error) {
	switch {
	case width < 1:
		return TwoDWork{}, errRange("width", width)
	case depth < 1 || shift < 1 || shift > depth:
		return TwoDWork{}, fmt.Errorf("sim: bad window depth=%d shift=%d", depth, shift)
	case randomHops < 0:
		return TwoDWork{}, errRange("randomHops", randomHops)
	case p < 1 || p > machine.Cores():
		return TwoDWork{}, errRange("p", p)
	case horizon <= 0:
		return TwoDWork{}, errRange("horizon", int(horizon))
	}
	s, err := New(machine)
	if err != nil {
		return TwoDWork{}, err
	}
	const prefillPerLine = 1 << 20
	subs := make([]*Word, width)
	for i := range subs {
		subs[i] = s.NewWord(prefillPerLine)
	}
	global := s.NewWord(prefillPerLine + depth/2)
	work := make([]TwoDWork, p)
	for core := 0; core < p; core++ {
		s.Go(core, twoDInstrumentedBody(subs, global, depth, shift, randomHops, seed, &work[core]))
	}
	s.Run(horizon)
	var total TwoDWork
	for _, w := range work {
		total.add(w)
	}
	return total, nil
}
