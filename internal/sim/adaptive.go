package sim

import (
	"fmt"
	"time"

	"stack2d/internal/core"
	"stack2d/internal/xrand"
)

// This file supports the adaptive relaxation controller (internal/adapt):
// an instrumented variant of TwoDBody that counts the controller's input
// signals — probes, CAS failures, window moves — so the controller can be
// driven against the simulated multicore machine. The native container
// this reproduction targets exposes a single hardware thread, where real
// CAS contention cannot arise; the simulation recovers the coherence
// behaviour of the paper's 16-core testbed deterministically, which is
// what cmd/adapttune's convergence demonstration runs on.

// TwoDWork aggregates one simulated segment's instrumented counters,
// mirroring the fields of core.OpStats the controller consumes.
type TwoDWork struct {
	Ops         uint64 // completed operations
	Pushes      uint64
	Pops        uint64 // pops returning a value
	EmptyPops   uint64
	Probes      uint64 // sub-stack validity checks
	CASFailures uint64 // failed descriptor CASes (contention)
	WindowMoves uint64 // Global shift CAS attempts after exhausted windows

	// Latency is the per-operation duration histogram, in simulated cycles
	// read as nanoseconds, bucketed with core.LatencyBucket so it folds
	// directly into a core.OpStats — the latency-goal controller sees the
	// same signal shape natively and in simulation. Every simulated
	// operation is recorded (sampling exists to keep the native hot path
	// cheap; the simulator has no such constraint).
	Latency [core.NumLatencyBuckets]uint64

	// SocketCAS attributes CASFailures to the failing thread's socket,
	// mirroring core.OpStats.SocketCAS — the widening-requester signal the
	// controller's placement attribution reads (DESIGN.md §7).
	SocketCAS [core.MaxPlacementSockets]uint64
}

// add folds other into w, field-wise.
func (w *TwoDWork) add(other TwoDWork) {
	w.Ops += other.Ops
	w.Pushes += other.Pushes
	w.Pops += other.Pops
	w.EmptyPops += other.EmptyPops
	w.Probes += other.Probes
	w.CASFailures += other.CASFailures
	w.WindowMoves += other.WindowMoves
	for i := range w.Latency {
		w.Latency[i] += other.Latency[i]
	}
	for i := range w.SocketCAS {
		w.SocketCAS[i] += other.SocketCAS[i]
	}
}

// probePlan builds one simulated thread's socket-aware search walk over
// the slot words — exactly the plan a native handle on the same socket
// would build (core.BuildProbePlan: same-socket slots first, remote spill
// section rotated by a thread-private offset so same-socket threads don't
// convoy when they spill). ord is nil for placement-blind runs (homes nil
// or local probing off), selecting the plain index walk.
func probePlan(homes []int, socket, rot int, localProbe bool) (ord, pos []int, localN int) {
	if !localProbe || homes == nil {
		return nil, nil, 0
	}
	return core.BuildProbePlan(homes, socket, rot)
}

// twoDInstrumentedBody is TwoDBody with work counters accumulated into w.
// Each simulated thread owns its distinct w; sum after Run. With homes and
// localProbe set the thread probes same-socket slots first, mirroring the
// native local-probe search exactly (anchor-relative coverage over the
// per-socket permutation, random hops restricted to local slots).
func twoDInstrumentedBody(subs []*Word, global *Word, depth, shift int64, randomHops int, seed uint64, homes []int, localProbe bool, w *TwoDWork) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(subs)
		sock := t.Socket()
		sockIdx := sock % core.MaxPlacementSockets
		ord, pos, localN := probePlan(homes, sock, rng.Intn(len(homes)+1), localProbe)
		hop := func() int {
			if ord == nil || localN == 0 {
				return rng.Intn(width)
			}
			return ord[rng.Intn(localN)]
		}
		anchor := rng.Intn(width)
		for t.Running() {
			push := rng.Bool()
			opStart := t.Clock()
			for t.Running() {
				g := t.Read(global)
				idx := anchor
				at := 0
				if ord != nil {
					at = pos[idx]
				}
				probes := 0
				randLeft := randomHops
				done := false
				empty := true
				for probes < width && t.Running() {
					c := t.Read(subs[idx])
					w.Probes++
					valid := c < g
					if !push {
						valid = c > g-depth
					}
					if valid {
						delta := int64(1)
						if !push {
							delta = -1
						}
						if t.CAS(subs[idx], c, c+delta) {
							anchor = idx
							done = true
							break
						}
						w.CASFailures++
						w.SocketCAS[sockIdx]++
						idx = hop()
						if ord != nil {
							at = pos[idx]
						}
						probes = 0
						randLeft = 0
						continue
					}
					if c != 0 {
						empty = false
					}
					if randLeft > 0 {
						randLeft--
						idx = hop()
						if ord != nil {
							at = pos[idx]
						}
						continue
					}
					probes++
					if ord == nil {
						idx++
						if idx == width {
							idx = 0
						}
					} else {
						at++
						if at == width {
							at = 0
						}
						idx = ord[at]
					}
				}
				if done {
					if push {
						w.Pushes++
					} else {
						w.Pops++
					}
					break
				}
				if !push && g == depth && empty {
					w.EmptyPops++
					break
				}
				w.WindowMoves++
				if push {
					t.CAS(global, g, g+shift)
				} else {
					next := g - shift
					if next < depth {
						next = depth
					}
					t.CAS(global, g, next)
				}
			}
			w.Ops++
			w.Latency[core.LatencyBucket(time.Duration(t.Clock()-opStart))]++
			t.OpDone()
		}
	}
}

// TwoDSegment runs one simulated segment: p threads execute the 2D-Stack
// at the given geometry for horizon cycles on machine, prefilled so pops
// rarely observe empty (as in the figure harnesses). It returns the summed
// instrumented work. Deterministic for fixed inputs. Placement-blind; see
// TwoDSegmentPlaced for the NUMA-homed variant.
func TwoDSegment(machine Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64) (TwoDWork, error) {
	return TwoDSegmentPlaced(machine, width, depth, shift, randomHops, p, horizon, seed, nil, false)
}

// validatePlacement checks a segment's homes map against its width and the
// machine's socket count; nil homes (placement-blind) is always valid.
func validatePlacement(machine Machine, width int, homes []int) error {
	if homes == nil {
		return nil
	}
	if len(homes) != width {
		return fmt.Errorf("sim: %d slot homes for width %d", len(homes), width)
	}
	for i, hm := range homes {
		if hm < 0 || hm >= machine.Sockets {
			return fmt.Errorf("sim: slot %d homed on socket %d of %d", i, hm, machine.Sockets)
		}
	}
	return nil
}

// TwoDSegmentPlaced is TwoDSegment with NUMA placement: homes maps each
// sub-stack slot to the socket whose memory holds its descriptor line
// (charged by the cost model — see NewWordOn), and localProbe selects the
// socket-aware search (threads visit same-socket slots first within the
// unchanged window discipline, exactly as native local-probe handles do).
// homes nil (with localProbe false) is the placement-blind TwoDSegment.
// This is the model behind cmd/adapttune's -placement A/B gate.
func TwoDSegmentPlaced(machine Machine, width int, depth, shift int64, randomHops, p int, horizon int64, seed uint64, homes []int, localProbe bool) (TwoDWork, error) {
	switch {
	case width < 1:
		return TwoDWork{}, errRange("width", width)
	case depth < 1 || shift < 1 || shift > depth:
		return TwoDWork{}, fmt.Errorf("sim: bad window depth=%d shift=%d", depth, shift)
	case randomHops < 0:
		return TwoDWork{}, errRange("randomHops", randomHops)
	case p < 1 || p > machine.Cores():
		return TwoDWork{}, errRange("p", p)
	case horizon <= 0:
		return TwoDWork{}, errRange("horizon", int(horizon))
	}
	if err := validatePlacement(machine, width, homes); err != nil {
		return TwoDWork{}, err
	}
	s, err := New(machine)
	if err != nil {
		return TwoDWork{}, err
	}
	const prefillPerLine = 1 << 20
	subs := make([]*Word, width)
	for i := range subs {
		if homes != nil {
			subs[i] = s.NewWordOn(prefillPerLine, homes[i])
		} else {
			subs[i] = s.NewWord(prefillPerLine)
		}
	}
	global := s.NewWord(prefillPerLine + depth/2)
	work := make([]TwoDWork, p)
	for c := 0; c < p; c++ {
		s.Go(c, twoDInstrumentedBody(subs, global, depth, shift, randomHops, seed, homes, localProbe, &work[c]))
	}
	s.Run(horizon)
	var total TwoDWork
	for _, w := range work {
		total.add(w)
	}
	return total, nil
}
