package sim

import "stack2d/internal/xrand"

// Additional simulated algorithms for the Figure 1 (relaxation sweep)
// reproduction: k-robin and k-segment, plus a width-parameterised 2D body
// builder used by the k→config mappings.

// RobinMultiBody models the k-robin distributed stack: each thread cycles
// deterministically through the sub-stack lines and — the behaviour the
// paper contrasts with the 2D-Stack — *retries the same line* on CAS
// failure instead of hopping away.
func RobinMultiBody(subs []*Word, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(subs)
		pos := rng.Intn(width)
		for t.Running() {
			push := rng.Bool()
			pos++
			if pos == width {
				pos = 0
			}
			for t.Running() {
				v := t.Read(subs[pos])
				if !push && v == 0 {
					// Empty sub-stack: advance to the next (round robin).
					pos++
					if pos == width {
						pos = 0
					}
					continue
				}
				delta := int64(1)
				if !push {
					delta = -1
				}
				if t.CAS(subs[pos], v, v+delta) {
					break
				}
				// k-robin keeps retrying the same sub-stack.
			}
			t.OpDone()
		}
	}
}

// KSegmentBody models the k-segment stack: all operations target the top
// segment's slot array. Slots are words holding 0 (empty) or 1 (occupied);
// a push CASes a random empty slot to 1, a pop a random occupied slot to
// 0. Segment replacement is modelled by a shared top-pointer word that
// every operation reads and that is CASed whenever the segment is found
// full (push) or empty (pop) — capturing the maintenance cost the paper
// blames for k-segment's decline at large k.
func KSegmentBody(slots []*Word, top *Word, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		size := len(slots)
		for t.Running() {
			push := rng.Bool()
			for t.Running() {
				t.Read(top) // every op validates the top segment pointer
				start := rng.Intn(size)
				acted := false
				for probe := 0; probe < size && t.Running(); probe++ {
					i := start + probe
					if i >= size {
						i -= size
					}
					v := t.Read(slots[i])
					if push && v == 0 {
						if t.CAS(slots[i], 0, 1) {
							acted = true
							break
						}
					} else if !push && v == 1 {
						if t.CAS(slots[i], 1, 0) {
							acted = true
							break
						}
					}
				}
				if acted {
					break
				}
				// Segment full/empty: pay the segment-replacement CAS on
				// the shared top pointer, then retry.
				v := t.Read(top)
				t.CAS(top, v, v+1)
			}
			t.OpDone()
		}
	}
}

// prefillSim is the standing population per sub-structure line used by the
// simulated experiments (never empties within a run's horizon).
const prefillSim = 1 << 20

// Figure1Throughput runs the simulated relaxation sweep point: algorithm
// alg configured for relaxation budget k at p threads, mirroring the
// wall-clock harness's Figure1Factory mappings.
func Figure1Throughput(machine Machine, alg AlgoName, k int64, p int, horizon int64) (float64, error) {
	if p < 1 || p > machine.Cores() {
		return 0, errRange("p", p)
	}
	if horizon <= 0 {
		return 0, errRange("horizon", int(horizon))
	}
	s, err := New(machine)
	if err != nil {
		return 0, err
	}
	const seed = 0x2d57ac
	var body func(*T)
	switch alg {
	case SimTwoD:
		// Mirror relax.TwoDConfigForK: width first (depth 1), then depth
		// at width 4P with shift = depth.
		width := int(k/3) + 1
		depth := int64(1)
		if width > 4*p {
			width = 4 * p
			depth = k / (3 * int64(width-1))
			if depth < 1 {
				depth = 1
			}
		}
		if width < 1 {
			width = 1
		}
		subs := make([]*Word, width)
		for i := range subs {
			subs[i] = s.NewWord(prefillSim)
		}
		global := s.NewWord(prefillSim + depth/2 + 1)
		body = TwoDBody(subs, global, depth, depth, 2, seed)
	case SimKRobin:
		width := int(k/(2*int64(p))) + 1
		if width < 1 {
			width = 1
		}
		subs := make([]*Word, width)
		for i := range subs {
			subs[i] = s.NewWord(prefillSim)
		}
		body = RobinMultiBody(subs, seed)
	case SimKSegment:
		size := int(k) + 1
		if size > 1<<14 {
			size = 1 << 14 // cap simulated slot arrays
		}
		slots := make([]*Word, size)
		// Half-occupied segment: both pushes and pops find targets.
		for i := range slots {
			slots[i] = s.NewWord(int64(i % 2))
		}
		top := s.NewWord(0)
		body = KSegmentBody(slots, top, seed)
	default:
		return 0, errAlgo(alg)
	}
	for core := 0; core < p; core++ {
		s.Go(core, body)
	}
	ops := s.Run(horizon)
	var total int64
	for _, n := range ops {
		total += n
	}
	return float64(total) * 1000 / float64(horizon), nil
}

// Additional simulated algorithm names for Figure 1.
const (
	SimKRobin   AlgoName = "k-robin"
	SimKSegment AlgoName = "k-segment"
)

// Figure1Algos returns the k-bounded simulated set, mirroring the paper.
func Figure1Algos() []AlgoName {
	return []AlgoName{SimTwoD, SimKRobin, SimKSegment}
}

type rangeError struct {
	name string
	v    int
}

func (e rangeError) Error() string {
	return "sim: " + e.name + " out of range"
}

func errRange(name string, v int) error { return rangeError{name, v} }

type algoError struct{ alg AlgoName }

func (e algoError) Error() string { return "sim: unknown algorithm " + string(e.alg) }

func errAlgo(alg AlgoName) error { return algoError{alg} }
