package sim

import "testing"

func TestFigure1ThroughputValidation(t *testing.T) {
	m := DefaultMachine()
	if _, err := Figure1Throughput(m, SimTwoD, 64, 0, 1000); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Figure1Throughput(m, SimTwoD, 64, 1, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Figure1Throughput(m, SimTreiber, 64, 1, 1000); err == nil {
		t.Error("treiber accepted in the k sweep (not a Figure 1 algorithm)")
	}
}

func TestFigure1AlgosProduceOps(t *testing.T) {
	m := DefaultMachine()
	for _, alg := range Figure1Algos() {
		for _, k := range []int64{8, 512} {
			thr, err := Figure1Throughput(m, alg, k, 4, 150000)
			if err != nil {
				t.Fatalf("%s k=%d: %v", alg, k, err)
			}
			if thr <= 0 {
				t.Fatalf("%s k=%d: zero throughput", alg, k)
			}
		}
	}
}

// TestSimTwoDThroughputRisesWithK: the paper's headline Figure 1 claim —
// relaxation buys throughput monotonically for the 2D design.
func TestSimTwoDThroughputRisesWithK(t *testing.T) {
	m := DefaultMachine()
	const horizon = 250000
	lo, err := Figure1Throughput(m, SimTwoD, 8, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Figure1Throughput(m, SimTwoD, 2048, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("simulated 2D: k=8 %.1f, k=2048 %.1f ops/kcycle", lo, hi)
	if hi < lo*2 {
		t.Fatalf("relaxation did not buy throughput: k=8 %.1f vs k=2048 %.1f", lo, hi)
	}
}

// TestSimTwoDBeatsKRobinAtHighK: at equal budget and thread count, the 2D
// design outperforms round-robin (which retries contended lines instead of
// hopping).
func TestSimTwoDBeatsKRobinAtHighK(t *testing.T) {
	m := DefaultMachine()
	const horizon = 250000
	const k = 2048
	d, err := Figure1Throughput(m, SimTwoD, k, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Figure1Throughput(m, SimKRobin, k, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("simulated k=%d P=8: 2D %.1f, k-robin %.1f ops/kcycle", k, d, r)
	if d < r {
		t.Fatalf("2D (%.1f) should outperform k-robin (%.1f) at k=%d", d, r, k)
	}
}
