package sim

import "fmt"

// This file models the width-shrink migration — the one reconfiguration
// that moves items — under the machine's coherence cost model, comparing
// the two strategies the repository has shipped:
//
//   - funnel: the pre-handoff design. One internal handle re-inserts every
//     stranded item through the structure's normal window search: an
//     expected half-round of descriptor probes per item, a CAS on whatever
//     sub-structure the search landed on, and a CAS on the hot Global line
//     each time the re-inserts exhaust the window band — the source of the
//     transient relaxation spike recorded in DESIGN.md.
//
//   - warm: the handoff shipped with the latency/energy control plane. The
//     stack splices each stranded chain onto the least-loaded surviving
//     sub-stack in one descriptor CAS (a scan of the surviving descriptors
//     plus a walk of the exclusively-owned chain); the queue appends each
//     item directly to the least-loaded surviving sub-queue (one enqueue
//     CAS and one counter bump per item, with the load scan amortised
//     across the drain). Both finish with exactly one batched raise of the
//     insert-side ceiling — restoring insert headroom — instead of the
//     funnel's one raise per exhausted band.
//
// The model is analytic over the Machine's published cost constants rather
// than a discrete-event run: after quiescence the migrator runs alone on
// the dropped slots, so there is no interleaving to discover — only work
// to count. It exists so the controller experiments can quantify the
// handoff win on the paper's testbed geometry without native hardware
// (cmd/adapttune prints it next to the shrink experiments, and the tests
// pin that the win does not regress).

// HandoffStructure selects which structure's migration is modelled.
type HandoffStructure int

const (
	// HandoffStack models core.Stack's migration (chain splice).
	HandoffStack HandoffStructure = iota
	// HandoffQueue models twodqueue.Queue's migration (per-item append).
	HandoffQueue
)

// HandoffModel is the modelled cost of one width-shrink migration.
type HandoffModel struct {
	// FunnelCycles / WarmCycles are the modelled migration costs in
	// machine cycles.
	FunnelCycles int64
	WarmCycles   int64
	// FunnelWindowMoves / WarmWindowMoves count CASes of the hot Global
	// line: the funnel pays one per exhausted band — each also restarting
	// every concurrent operation's search — while the warm handoff pays
	// exactly one batched raise at the end of the migration.
	FunnelWindowMoves int64
	WarmWindowMoves   int64
	// FunnelDisplacement / WarmDisplacement are upper bounds on the extra
	// out-of-order displacement the migration causes: the funnel piles the
	// stranded population wherever one handle's search lands on top of
	// everything resident, while the warm handoff spreads it by the live
	// counters, so each item lands behind at most the mean surviving load
	// plus the stranded items ahead of it.
	FunnelDisplacement int64
	WarmDisplacement   int64
}

// ModelShrinkHandoff models migrating `stranded` items into `newWidth`
// surviving slots holding `live` items in total, after a shrink from
// oldWidth, under machine m's cost constants. depth and shift are the
// window parameters in force during the migration (the funnel's window-move
// count depends on them; the warm handoff's cost does not).
func ModelShrinkHandoff(m Machine, structure HandoffStructure, oldWidth, newWidth int, depth, shift, live, stranded int64) (HandoffModel, error) {
	switch {
	case oldWidth < 2 || newWidth < 1 || newWidth >= oldWidth:
		return HandoffModel{}, fmt.Errorf("sim: handoff needs 1 <= newWidth < oldWidth, got %d -> %d", oldWidth, newWidth)
	case depth < 1 || shift < 1 || shift > depth:
		return HandoffModel{}, fmt.Errorf("sim: bad window depth=%d shift=%d", depth, shift)
	case live < 0 || stranded < 0:
		return HandoffModel{}, fmt.Errorf("sim: negative populations live=%d stranded=%d", live, stranded)
	}
	if err := m.Validate(); err != nil {
		return HandoffModel{}, err
	}

	var out HandoffModel
	droppedSlots := int64(oldWidth - newWidth)
	w := int64(newWidth)

	// Funnel: per item, an expected (w+1)/2 descriptor probes (coherence
	// misses: the live traffic keeps invalidating the migrator's copies),
	// then the winning insert — one descriptor CAS for the stack, an
	// enqueue CAS plus a counter bump for the queue; plus a Global CAS
	// each time the re-inserts fill the open band (shift headroom per
	// surviving slot per move).
	probesPerItem := (w + 1) / 2
	if probesPerItem < 1 {
		probesPerItem = 1
	}
	insertCost := m.IntraSocketCost
	if structure == HandoffQueue {
		insertCost = 2 * m.IntraSocketCost
	}
	out.FunnelWindowMoves = stranded / (shift * w)
	out.FunnelCycles = stranded*(probesPerItem*m.IntraSocketCost+insertCost) +
		out.FunnelWindowMoves*m.InterSocketCost
	// Every stranded item re-enters on top of / behind the whole resident
	// population, wherever the single handle's search happened to land.
	out.FunnelDisplacement = live + stranded

	// Warm: a scan of the surviving descriptors (coherence misses) to pick
	// the least-loaded target, then either one splice CAS per dropped slot
	// (stack; the chain walk is local, exclusively-owned memory) or one
	// append CAS plus a counter bump per item (queue).
	switch structure {
	case HandoffStack:
		out.WarmCycles = droppedSlots*(w*m.IntraSocketCost+m.IntraSocketCost) + stranded*m.LocalCost
	case HandoffQueue:
		out.WarmCycles = stranded*(2*m.IntraSocketCost+w*m.LocalCost) + droppedSlots*w*m.IntraSocketCost
	default:
		return HandoffModel{}, fmt.Errorf("sim: unknown handoff structure %d", structure)
	}
	if stranded > 0 {
		out.WarmWindowMoves = 1 // the single batched insert-ceiling raise
		out.WarmCycles += m.InterSocketCost
	}
	// Balanced placement: an item lands behind at most the mean surviving
	// load plus the stranded items drained ahead of it.
	out.WarmDisplacement = live/w + stranded
	if out.WarmDisplacement > out.FunnelDisplacement {
		out.WarmDisplacement = out.FunnelDisplacement
	}
	return out, nil
}
