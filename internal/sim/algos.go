package sim

import "stack2d/internal/xrand"

// Simulated algorithm bodies. Each stack is modelled at the granularity
// that determines its coherence behaviour: the words its operations CAS.
// Values track per-structure population so validity checks and empty
// returns behave like the real code; payloads are irrelevant to cost.

// TreiberBody models the Treiber stack: every operation CASes the single
// top line. Under contention all threads ping-pong one line — the single
// access point bottleneck the paper starts from.
func TreiberBody(top *Word, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		for t.Running() {
			if rng.Bool() { // push
				for t.Running() {
					v := t.Read(top)
					if t.CAS(top, v, v+1) {
						break
					}
				}
			} else { // pop
				for t.Running() {
					v := t.Read(top)
					if v == 0 {
						break // empty
					}
					if t.CAS(top, v, v-1) {
						break
					}
				}
			}
			t.OpDone()
		}
	}
}

// RandomMultiBody models the horizontally distributed stack with uniform
// random scheduling over `width` sub-stack lines.
func RandomMultiBody(subs []*Word, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(subs)
		for t.Running() {
			if rng.Bool() { // push
				for t.Running() {
					i := rng.Intn(width)
					v := t.Read(subs[i])
					if t.CAS(subs[i], v, v+1) {
						break
					}
				}
			} else { // pop: random start, sweep for non-empty
				for t.Running() {
					start := rng.Intn(width)
					acted := false
					for probe := 0; probe < width; probe++ {
						i := (start + probe) % width
						v := t.Read(subs[i])
						if v == 0 {
							continue
						}
						if t.CAS(subs[i], v, v-1) {
							acted = true
							break
						}
					}
					if acted {
						break
					}
					// All observed empty: count as an empty return.
					break
				}
			}
			t.OpDone()
		}
	}
}

// TwoDBody models the 2D-Stack: per-sub-stack descriptor lines plus the
// shared Global line. The locality anchor keeps a thread re-hitting its
// own line (cache hits) while the window stays open; Global is read on
// every search but only written when a whole window is exhausted, so its
// line stays in shared state and cheap — the coherence argument behind the
// design.
func TwoDBody(subs []*Word, global *Word, depth, shift int64, randomHops int, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		width := len(subs)
		anchor := rng.Intn(width)
		for t.Running() {
			push := rng.Bool()
			for t.Running() {
				g := t.Read(global)
				idx := anchor
				probes := 0
				randLeft := randomHops
				done := false
				empty := true
				for probes < width && t.Running() {
					c := t.Read(subs[idx])
					valid := c < g
					if !push {
						valid = c > g-depth
					}
					if valid {
						delta := int64(1)
						if !push {
							delta = -1
						}
						if t.CAS(subs[idx], c, c+delta) {
							anchor = idx
							done = true
							break
						}
						idx = rng.Intn(width)
						probes = 0
						randLeft = 0
						continue
					}
					if c != 0 {
						empty = false
					}
					if randLeft > 0 {
						randLeft--
						idx = rng.Intn(width)
						continue
					}
					probes++
					idx++
					if idx == width {
						idx = 0
					}
				}
				if done {
					break
				}
				if !push && g == depth && empty {
					break // empty pop
				}
				// Move the window.
				if push {
					t.CAS(global, g, g+shift)
				} else {
					next := g - shift
					if next < depth {
						next = depth
					}
					t.CAS(global, g, next)
				}
			}
			t.OpDone()
		}
	}
}

// EliminationBody models the elimination back-off stack: a central top
// line plus collision-slot lines. A failed central CAS diverts to a random
// slot where an opposite operation can cancel it out; collisions touch a
// slot line instead of the central line, which is the structure's whole
// point.
func EliminationBody(top *Word, slots []*Word, seed uint64) func(*T) {
	return func(t *T) {
		rng := xrand.New(seed + uint64(t.Core())*0x9e3779b97f4a7c15)
		for t.Running() {
			push := rng.Bool()
			for t.Running() {
				v := t.Read(top)
				if !push && v == 0 {
					break // empty
				}
				delta := int64(1)
				if !push {
					delta = -1
				}
				if t.CAS(top, v, v+delta) {
					break
				}
				// Contention: try to eliminate. A pusher parks +1 in an
				// empty slot and waits for a partner; a popper scans a few
				// random slots for a parked +1 to consume.
				if push {
					i := rng.Intn(len(slots))
					if t.Read(slots[i]) == 0 && t.CAS(slots[i], 0, 1) {
						t.Compute(128) // collision window
						if !t.CAS(slots[i], 1, 0) {
							break // taken: eliminated
						}
					}
					continue
				}
				eliminated := false
				for try := 0; try < 2 && !eliminated; try++ {
					i := rng.Intn(len(slots))
					if t.Read(slots[i]) == 1 && t.CAS(slots[i], 1, 0) {
						eliminated = true
					}
				}
				if eliminated {
					break
				}
			}
			t.OpDone()
		}
	}
}
