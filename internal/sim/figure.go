package sim

import "fmt"

// AlgoName selects a simulated algorithm in Figure2Sim.
type AlgoName string

// Simulated algorithms.
const (
	SimTreiber     AlgoName = "treiber"
	SimRandom      AlgoName = "random"
	SimTwoD        AlgoName = "2D-stack"
	SimElimination AlgoName = "elimination"
)

// Algos returns the simulated algorithm set in display order.
func Algos() []AlgoName {
	return []AlgoName{SimTwoD, SimRandom, SimElimination, SimTreiber}
}

// Throughput runs one simulated experiment: p threads (pinned to cores 0,
// 1, ... — filling socket 0 first, as the paper pins) executing the named
// algorithm for `horizon` cycles, prefilled so pops rarely hit empty.
// It returns completed operations per 1000 cycles (higher is better).
func Throughput(machine Machine, alg AlgoName, p int, horizon int64) (float64, error) {
	if p < 1 || p > machine.Cores() {
		return 0, fmt.Errorf("sim: p=%d outside 1..%d", p, machine.Cores())
	}
	if horizon <= 0 {
		return 0, fmt.Errorf("sim: horizon must be positive")
	}
	s, err := New(machine)
	if err != nil {
		return 0, err
	}
	const prefillPerLine = 1 << 20 // effectively never empty
	const seed = 0x2d57ac
	var body func(*T)
	switch alg {
	case SimTreiber:
		top := s.NewWord(prefillPerLine)
		body = TreiberBody(top, seed)
	case SimRandom:
		subs := make([]*Word, 4*p)
		for i := range subs {
			subs[i] = s.NewWord(prefillPerLine)
		}
		body = RandomMultiBody(subs, seed)
	case SimTwoD:
		width := 4 * p
		subs := make([]*Word, width)
		for i := range subs {
			subs[i] = s.NewWord(prefillPerLine)
		}
		// The window must straddle the prefill level — pushes valid up to
		// +depth/2, pops valid down to −depth/2 — mirroring a warmed-up
		// real stack whose Global has settled around the standing
		// population.
		const depth = 64
		global := s.NewWord(prefillPerLine + depth/2)
		body = TwoDBody(subs, global, depth, depth, 2, seed)
	case SimElimination:
		top := s.NewWord(prefillPerLine)
		slots := make([]*Word, p)
		for i := range slots {
			slots[i] = s.NewWord(0)
		}
		body = EliminationBody(top, slots, seed)
	default:
		return 0, fmt.Errorf("sim: unknown algorithm %q", alg)
	}
	for core := 0; core < p; core++ {
		s.Go(core, body)
	}
	ops := s.Run(horizon)
	var total int64
	for _, n := range ops {
		total += n
	}
	return float64(total) * 1000 / float64(horizon), nil
}
