package sim

import "testing"

func TestMachineValidate(t *testing.T) {
	if err := DefaultMachine().Validate(); err != nil {
		t.Fatalf("DefaultMachine invalid: %v", err)
	}
	bad := []Machine{
		{},
		{Sockets: 1, CoresPerSocket: 1, LocalCost: 0, IntraSocketCost: 1, InterSocketCost: 1},
		{Sockets: 1, CoresPerSocket: 1, LocalCost: 5, IntraSocketCost: 2, InterSocketCost: 10},
		{Sockets: 1, CoresPerSocket: 1, LocalCost: 1, IntraSocketCost: 2, InterSocketCost: 1},
		{Sockets: 1, CoresPerSocket: 1, LocalCost: 1, IntraSocketCost: 1, InterSocketCost: 1, ComputePerOp: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad machine %d accepted: %+v", i, m)
		}
	}
	if got := DefaultMachine().Cores(); got != 16 {
		t.Fatalf("DefaultMachine.Cores = %d, want 16", got)
	}
}

func TestSingleThreadDeterministic(t *testing.T) {
	run := func() ([]int64, int64) {
		s := MustNew(DefaultMachine())
		w := s.NewWord(0)
		var final int64
		s.Go(0, func(t *T) {
			for t.Running() {
				v := t.Read(w)
				if !t.CAS(w, v, v+1) {
					panic("uncontended CAS failed")
				}
				t.OpDone()
			}
			final = t.Clock()
		})
		ops := s.Run(10000)
		return ops, final
	}
	ops1, clk1 := run()
	ops2, clk2 := run()
	if ops1[0] != ops2[0] || clk1 != clk2 {
		t.Fatalf("simulation not deterministic: %v/%d vs %v/%d", ops1, clk1, ops2, clk2)
	}
	if ops1[0] == 0 {
		t.Fatal("no operations completed")
	}
	if clk1 < 10000 {
		t.Fatalf("thread stopped at clock %d before horizon", clk1)
	}
}

func TestLocalReadsAreCheapAfterCaching(t *testing.T) {
	m := DefaultMachine()
	s := MustNew(m)
	w := s.NewWord(7)
	var first, second int64
	s.Go(0, func(t *T) {
		c0 := t.Clock()
		t.Read(w)
		first = t.Clock() - c0
		c1 := t.Clock()
		t.Read(w)
		second = t.Clock() - c1
	})
	s.Run(0) // horizon 0: body still runs once through (no Running loop)
	if first != m.LocalCost || second != m.LocalCost {
		t.Fatalf("cold unowned read/local re-read cost = %d/%d, want %d/%d",
			first, second, m.LocalCost, m.LocalCost)
	}
}

func TestCoherenceTransferCosts(t *testing.T) {
	m := DefaultMachine()
	s := MustNew(m)
	w := s.NewWord(0)
	// Thread A (core 0) writes; thread B (core 1, same socket) then reads;
	// thread C (core 8, other socket) then reads. Sequence forced via
	// Compute offsets.
	var bCost, cCost int64
	s.Go(0, func(t *T) {
		t.Write(w, 1)
	})
	s.Go(1, func(t *T) {
		t.Compute(500) // run after A's write
		c := t.Clock()
		t.Read(w)
		bCost = t.Clock() - c
	})
	s.Go(8, func(t *T) {
		t.Compute(1000)
		c := t.Clock()
		t.Read(w)
		cCost = t.Clock() - c
	})
	s.Run(0)
	if bCost != m.IntraSocketCost {
		t.Fatalf("same-socket transfer cost = %d, want %d", bCost, m.IntraSocketCost)
	}
	if cCost != m.InterSocketCost {
		t.Fatalf("cross-socket transfer cost = %d, want %d", cCost, m.InterSocketCost)
	}
}

func TestCASConflictDetected(t *testing.T) {
	// Two threads CAS the same word from the same observed value; exactly
	// one must succeed.
	s := MustNew(DefaultMachine())
	w := s.NewWord(0)
	results := make([]bool, 2)
	for i := 0; i < 2; i++ {
		i := i
		s.Go(i, func(t *T) {
			v := t.Read(w)
			results[i] = t.CAS(w, v, v+1)
		})
	}
	s.Run(0)
	if results[0] == results[1] {
		t.Fatalf("CAS conflict not serialised: %v", results)
	}
	if w.value != 1 {
		t.Fatalf("word value = %d, want 1", w.value)
	}
}

func TestThroughputRejectsBadArgs(t *testing.T) {
	m := DefaultMachine()
	if _, err := Throughput(m, SimTreiber, 0, 1000); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := Throughput(m, SimTreiber, 99, 1000); err == nil {
		t.Error("p beyond cores accepted")
	}
	if _, err := Throughput(m, SimTreiber, 1, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Throughput(m, AlgoName("nope"), 1, 1000); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestAllAlgosProduceOps(t *testing.T) {
	m := DefaultMachine()
	for _, alg := range Algos() {
		thr, err := Throughput(m, alg, 4, 200000)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if thr <= 0 {
			t.Fatalf("%s: zero simulated throughput", alg)
		}
	}
}

// TestTreiberDoesNotScale is the core qualitative fact of the paper's
// Figure 2: the single-access-point stack loses throughput as threads are
// added (every op transfers the top line), while the 2D-Stack gains.
func TestTreiberDoesNotScale(t *testing.T) {
	m := DefaultMachine()
	const horizon = 300000
	t1, err := Throughput(m, SimTreiber, 1, horizon)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := Throughput(m, SimTreiber, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if t8 > t1*1.5 {
		t.Fatalf("simulated treiber scaled: P=1 %.1f -> P=8 %.1f ops/kcycle", t1, t8)
	}
}

func TestTwoDScalesWithThreads(t *testing.T) {
	m := DefaultMachine()
	const horizon = 300000
	d1, err := Throughput(m, SimTwoD, 1, horizon)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := Throughput(m, SimTwoD, 8, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if d8 < d1*3 {
		t.Fatalf("simulated 2D-stack did not scale: P=1 %.1f -> P=8 %.1f ops/kcycle", d1, d8)
	}
}

// TestTwoDBeatsTreiberUnderContention: the headline comparison at high
// thread counts.
func TestTwoDBeatsTreiberUnderContention(t *testing.T) {
	m := DefaultMachine()
	const horizon = 300000
	d16, err := Throughput(m, SimTwoD, 16, horizon)
	if err != nil {
		t.Fatal(err)
	}
	t16, err := Throughput(m, SimTreiber, 16, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if d16 < 2*t16 {
		t.Fatalf("simulated 2D-stack (%.1f) does not clearly beat treiber (%.1f) at P=16", d16, t16)
	}
}

// TestTwoDQueueSegmentDeterministicAndContended checks the queue model the
// adapttune -queue convergence runs on: identical inputs reproduce
// identical work, and widening the structure relieves contention (fewer CAS
// failures per operation, more completed operations) exactly as the stack
// model does.
func TestTwoDQueueSegmentDeterministicAndContended(t *testing.T) {
	m := DefaultMachine()
	a, err := TwoDQueueSegment(m, 4, 8, 8, 2, 16, 100000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoDQueueSegment(m, 4, 8, 8, 2, 16, 100000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("segment not deterministic: %+v vs %+v", a, b)
	}
	wide, err := TwoDQueueSegment(m, 32, 8, 8, 2, 16, 100000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Ops <= a.Ops {
		t.Fatalf("widening did not raise throughput: %d -> %d ops", a.Ops, wide.Ops)
	}
	narrowCAS := float64(a.CASFailures) / float64(a.Ops)
	wideCAS := float64(wide.CASFailures) / float64(wide.Ops)
	if wideCAS >= narrowCAS {
		t.Fatalf("widening did not relieve contention: %.3f -> %.3f cas/op", narrowCAS, wideCAS)
	}
}

func TestTwoDQueueSegmentValidation(t *testing.T) {
	m := DefaultMachine()
	cases := []struct {
		width      int
		depth, shf int64
		hops, p    int
		horizon    int64
	}{
		{0, 8, 8, 2, 4, 1000},
		{4, 0, 1, 2, 4, 1000},
		{4, 8, 9, 2, 4, 1000},
		{4, 8, 8, -1, 4, 1000},
		{4, 8, 8, 2, 0, 1000},
		{4, 8, 8, 2, m.Cores() + 1, 1000},
		{4, 8, 8, 2, 4, 0},
	}
	for _, c := range cases {
		if _, err := TwoDQueueSegment(m, c.width, c.depth, c.shf, c.hops, c.p, c.horizon, 1); err == nil {
			t.Errorf("TwoDQueueSegment(%+v) accepted invalid input", c)
		}
	}
}
