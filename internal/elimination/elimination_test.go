package elimination

import (
	"sync"
	"testing"
	"testing/quick"

	"stack2d/internal/seqspec"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(8), true},
		{"min", Config{Slots: 1, Spins: 1}, true},
		{"no slots", Config{Slots: 0, Spins: 1}, false},
		{"no spins", Config{Slots: 1, Spins: 0}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); (err == nil) != c.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, c.ok)
			}
		})
	}
	if cfg := DefaultConfig(0); cfg.Slots != 1 {
		t.Fatalf("DefaultConfig(0).Slots = %d, want clamped 1", cfg.Slots)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(zero Config) did not panic")
		}
	}()
	MustNew[int](Config{})
}

func TestSequentialLIFO(t *testing.T) {
	// Single-threaded, the elimination layer is never entered (TryPush on
	// an uncontended stack always succeeds), so behaviour is strict LIFO.
	s := MustNew[uint64](DefaultConfig(1))
	h := s.NewHandle()
	var m seqspec.Model
	for v := uint64(0); v < 300; v++ {
		h.Push(v)
		m.Push(v)
		if v%3 == 2 {
			got, gok := h.Pop()
			want, wok := m.Pop()
			if gok != wok || got != want {
				t.Fatalf("Pop = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
	for {
		want, wok := m.Pop()
		got, gok := h.Pop()
		if gok != wok {
			t.Fatalf("emptiness diverged")
		}
		if !wok {
			break
		}
		if got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestEmptyPop(t *testing.T) {
	s := MustNew[int](DefaultConfig(2))
	h := s.NewHandle()
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
}

func TestDirectElimination(t *testing.T) {
	// Drive the collision layer deterministically: park an offer via
	// tryEliminatePush in one goroutine while a popper claims it.
	s := MustNew[uint64](Config{Slots: 1, Spins: 1 << 20})
	pusher := s.NewHandle()
	popper := s.NewHandle()

	done := make(chan bool)
	go func() { done <- pusher.tryEliminatePush(42) }()

	var got uint64
	var ok bool
	for !ok {
		got, ok = popper.tryEliminatePop()
	}
	if got != 42 {
		t.Fatalf("eliminated value = %d, want 42", got)
	}
	if !<-done {
		t.Fatal("pusher did not observe elimination")
	}
	if s.Len() != 0 {
		t.Fatalf("central stack grew during elimination: Len=%d", s.Len())
	}
}

func TestWithdrawnOfferNotLost(t *testing.T) {
	// A pusher that times out must retry centrally, so the value still
	// arrives.
	s := MustNew[uint64](Config{Slots: 1, Spins: 1})
	h := s.NewHandle()
	if h.tryEliminatePush(7) {
		t.Fatal("tryEliminatePush succeeded with no popper present")
	}
	// The public Push must always land the value somewhere durable.
	h.Push(7)
	if v, ok := h.Pop(); !ok || v != 7 {
		t.Fatalf("Pop = (%d,%v), want (7,true)", v, ok)
	}
}

func TestConcurrentConservation(t *testing.T) {
	const (
		workers = 8
		perW    = 3000
	)
	s := MustNew[uint64](DefaultConfig(workers))
	popped := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if v, ok := h.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

func TestConcurrentSymmetricPairs(t *testing.T) {
	// Dedicated pushers and poppers: every pushed value must eventually be
	// popped exactly once (poppers retry through transient empties, which
	// the elimination layer makes more likely).
	const n = 10000
	s := MustNew[uint64](DefaultConfig(4))
	var wg sync.WaitGroup
	results := make(chan uint64, n)
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := s.NewHandle()
		for v := uint64(1); v <= n; v++ {
			h.Push(v)
		}
	}()
	go func() {
		defer wg.Done()
		h := s.NewHandle()
		got := 0
		for got < n {
			if v, ok := h.Pop(); ok {
				results <- v
				got++
			}
		}
	}()
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool, n)
	for v := range results {
		if seen[v] {
			t.Fatalf("value %d popped twice", v)
		}
		seen[v] = true
	}
	if len(seen) != n {
		t.Fatalf("popped %d distinct values, want %d", len(seen), n)
	}
}

// Property: sequential push-then-drain reverses the input (strict LIFO).
func TestSequentialPropertyReverses(t *testing.T) {
	f := func(vals []uint64) bool {
		s := MustNew[uint64](DefaultConfig(1))
		h := s.NewHandle()
		for _, v := range vals {
			h.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			v, ok := h.Pop()
			if !ok || v != vals[i] {
				return false
			}
		}
		_, ok := h.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
