package elimination

import (
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/seqspec"
	"stack2d/internal/xrand"
)

// TestIntervalSanityConcurrent: the elimination stack is strict (k = 0), so
// its concurrent histories must pass conservation, causality and zero-slack
// empty sanity — including histories where pairs eliminate without touching
// the central stack (those appear as overlapping push/pop pairs, which the
// checker accepts).
func TestIntervalSanityConcurrent(t *testing.T) {
	s := MustNew[uint64](Config{Slots: 4, Spins: 8})
	var clock atomic.Int64
	var label atomic.Uint64
	const workers = 8
	const opsPerW = 2000
	histories := make([][]seqspec.IntervalOp, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			rng := xrand.New(uint64(w) + 1)
			hist := make([]seqspec.IntervalOp, 0, opsPerW)
			for i := 0; i < opsPerW; i++ {
				begin := clock.Add(1)
				if rng.Bool() {
					v := label.Add(1)
					h.Push(v)
					hist = append(hist, seqspec.IntervalOp{
						Kind: seqspec.OpPush, Value: v, Begin: begin, End: clock.Add(1),
					})
				} else {
					v, ok := h.Pop()
					hist = append(hist, seqspec.IntervalOp{
						Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
					})
				}
			}
			histories[w] = hist
		}(w)
	}
	wg.Wait()

	var all []seqspec.IntervalOp
	for _, hist := range histories {
		all = append(all, hist...)
	}
	h := s.NewHandle()
	for {
		begin := clock.Add(1)
		v, ok := h.Pop()
		all = append(all, seqspec.IntervalOp{
			Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
		})
		if !ok {
			break
		}
	}
	if err := seqspec.CheckIntervalSanity(all, 0); err != nil {
		t.Fatal(err)
	}
}
