package elimination

import (
	"testing"

	"stack2d/internal/seqspec"
)

// TestIntervalSanityConcurrent: the elimination stack is strict (k = 0), so
// its concurrent histories must pass conservation, causality and zero-slack
// empty sanity — including histories where pairs eliminate without touching
// the central stack (those appear as overlapping push/pop pairs, which the
// checkers accept). Recording uses the shared seqspec scaffolding, one
// handle per goroutine; the same history then runs through the k-distance
// checker at k = 0, where every displacement must be explained by overlap.
func TestIntervalSanityConcurrent(t *testing.T) {
	s := MustNew[uint64](Config{Slots: 4, Spins: 8})
	const workers = 8
	const opsPerW = 2000
	all := seqspec.CollectRandomHistory(workers, opsPerW, func(int) seqspec.WorkerFuncs {
		h := s.NewHandle()
		return seqspec.WorkerFuncs{Push: h.Push, Pop: h.Pop}
	})
	if err := seqspec.CheckIntervalSanity(all, 0); err != nil {
		t.Fatal(err)
	}
	rep, err := (seqspec.KStackChecker{K: 0}).Check(all)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxStrain > 0 {
		t.Fatalf("strict stack shows distance beyond overlap slack: %+v", rep)
	}
}
