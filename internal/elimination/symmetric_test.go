package elimination

import (
	"sync"
	"testing"

	"stack2d/internal/seqspec"
)

func symCfg() Config { return Config{Slots: 2, Spins: 8, Symmetric: true} }

func TestSymmetricSequentialLIFO(t *testing.T) {
	s := MustNew[uint64](symCfg())
	h := s.NewHandle()
	var m seqspec.Model
	for v := uint64(0); v < 300; v++ {
		h.Push(v)
		m.Push(v)
		if v%2 == 1 {
			got, gok := h.Pop()
			want, wok := m.Pop()
			if gok != wok || got != want {
				t.Fatalf("Pop = (%d,%v), want (%d,%v)", got, gok, want, wok)
			}
		}
	}
}

func TestSymmetricPopFulfilledByPush(t *testing.T) {
	// Park a pop request directly, then fulfil it with tryEliminatePush.
	s := MustNew[uint64](Config{Slots: 1, Spins: 1 << 20, Symmetric: true})
	popper := s.NewHandle()
	pusher := s.NewHandle()
	done := make(chan uint64)
	go func() {
		v, ok := popper.tryEliminatePop()
		if !ok {
			t.Error("parked pop withdrew unexpectedly")
		}
		done <- v
	}()
	// Fulfil: retry until the pop request is visible in the slot.
	for !pusher.tryEliminatePush(77) {
	}
	if got := <-done; got != 77 {
		t.Fatalf("fulfilled pop got %d, want 77", got)
	}
	if s.Len() != 0 {
		t.Fatalf("central stack grew during symmetric elimination: %d", s.Len())
	}
}

func TestSymmetricPopWithdrawsWithoutPartner(t *testing.T) {
	s := MustNew[uint64](Config{Slots: 1, Spins: 1, Symmetric: true})
	h := s.NewHandle()
	if _, ok := h.tryEliminatePop(); ok {
		t.Fatal("pop eliminated with no partner present")
	}
	// Public Pop on an empty stack must still report empty.
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty returned ok")
	}
}

func TestSymmetricConcurrentConservation(t *testing.T) {
	const workers, perW = 8, 2500
	s := MustNew[uint64](Config{Slots: 4, Spins: 8, Symmetric: true})
	popped := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < perW; i++ {
				h.Push(uint64(w*perW + i))
				if v, ok := h.Pop(); ok {
					popped[w] = append(popped[w], v)
				}
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]int)
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range s.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}
}

// TestSymmetricMicroHistoriesLinearizable: the symmetric protocol must
// remain strictly linearizable.
func TestSymmetricMicroHistoriesLinearizable(t *testing.T) {
	const rounds = 60
	for round := 0; round < rounds; round++ {
		s := MustNew[uint64](Config{Slots: 2, Spins: 4, Symmetric: true})
		runMicroHistory(t, s, round)
	}
}

// runMicroHistory drives a tiny concurrent history on s and checks it with
// the exhaustive LIFO linearizability checker.
func runMicroHistory(t *testing.T, s *Stack[uint64], round int) {
	t.Helper()
	const workers, opsPerW = 3, 4
	type rec struct {
		ops []seqspec.IntervalOp
	}
	var clock, label struct {
		mu sync.Mutex
		v  int64
	}
	tick := func() int64 {
		clock.mu.Lock()
		defer clock.mu.Unlock()
		clock.v++
		return clock.v
	}
	nextLabel := func() uint64 {
		label.mu.Lock()
		defer label.mu.Unlock()
		label.v++
		return uint64(label.v)
	}
	hist := make([]rec, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := s.NewHandle()
			for i := 0; i < opsPerW; i++ {
				begin := tick()
				if (w+i)%2 == 0 {
					v := nextLabel()
					h.Push(v)
					hist[w].ops = append(hist[w].ops, seqspec.IntervalOp{
						Kind: seqspec.OpPush, Value: v, Begin: begin, End: tick(),
					})
				} else {
					v, ok := h.Pop()
					hist[w].ops = append(hist[w].ops, seqspec.IntervalOp{
						Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: tick(),
					})
				}
			}
		}(w)
	}
	wg.Wait()
	var all []seqspec.IntervalOp
	for _, hr := range hist {
		all = append(all, hr.ops...)
	}
	h := s.NewHandle()
	for {
		begin := tick()
		v, ok := h.Pop()
		all = append(all, seqspec.IntervalOp{
			Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: tick(),
		})
		if !ok {
			break
		}
	}
	if err := seqspec.CheckLinearizableLIFO(all); err != nil {
		t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
	}
}
