// Package elimination implements a lock-free elimination back-off stack in
// the style of Hendler, Shavit and Yerushalmi ("A scalable lock-free stack
// algorithm", JPDC 2010) — the "elimination" baseline of the paper's
// Figure 2.
//
// A central Treiber stack carries the common case. When an operation's CAS
// on the central stack fails (contention), the operation diverts to a
// collision array where a concurrent Push/Pop pair can *eliminate*: the pop
// takes the push's value directly and both complete without touching the
// central stack at all. Eliminated pairs are linearizable (the push is
// ordered immediately before the pop at the moment of the exchange), so the
// stack remains strictly LIFO.
//
// Adaptation note: we use the asymmetric variant in which pushers advertise
// offers and poppers consume them. It preserves the defining behaviour the
// paper measures — symmetric workloads eliminate aggressively, asymmetric
// workloads degrade toward a plain Treiber stack (ablation A5 exercises
// exactly this).
package elimination

import (
	"runtime"
	"sync/atomic"

	"stack2d/internal/core"
	"stack2d/internal/pad"
	"stack2d/internal/treiber"
	"stack2d/internal/xrand"
)

// Offer lifecycle states.
const (
	offerWaiting   int32 = iota // parked, available to partners
	offerTaken                  // consumed/fulfilled by a partner
	offerWithdrawn              // owner timed out and reclaimed it
	offerClaimed                // pop offer claimed by a pusher, value in flight
)

// offer kinds.
const (
	kindPush int8 = iota // a parked push carrying a value
	kindPop              // a parked pop waiting to be handed a value
)

// offer is a parked operation advertisement in the collision array.
type offer[T any] struct {
	kind  int8
	value T
	state atomic.Int32
}

// Config tunes the collision layer.
type Config struct {
	// Slots is the size of the collision array. The original scales it
	// with the number of threads; a handful per thread works well.
	Slots int
	// Spins is how many yield-loop iterations a parked operation waits
	// for a partner before withdrawing to retry centrally.
	Spins int
	// Symmetric enables the full HSY protocol in which pops also park and
	// pushers fulfil them. The asymmetric default (pushers advertise,
	// poppers consume) is cheaper per miss; the symmetric variant
	// eliminates more pairs under pop-heavy phases.
	Symmetric bool
}

// DefaultConfig sizes the collision layer for p expected threads.
func DefaultConfig(p int) Config {
	if p < 1 {
		p = 1
	}
	return Config{Slots: p, Spins: 32}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Slots < 1 {
		return errSlots
	}
	if c.Spins < 1 {
		return errSpins
	}
	return nil
}

var (
	errSlots = errorString("elimination: Slots must be >= 1")
	errSpins = errorString("elimination: Spins must be >= 1")
)

// errorString is a trivial constant-friendly error type.
type errorString string

func (e errorString) Error() string { return string(e) }

// Stack is a lock-free elimination back-off stack. Create with New; obtain
// one Handle per goroutine.
type Stack[T any] struct {
	cfg     Config
	central treiber.Stack[T]
	slots   []pad.PointerLine[offer[T]]
	seed    pad.Uint64Line
}

// New returns an empty elimination stack.
func New[T any](cfg Config) (*Stack[T], error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Stack[T]{cfg: cfg, slots: make([]pad.PointerLine[offer[T]], cfg.Slots)}, nil
}

// MustNew is New that panics on config error.
func MustNew[T any](cfg Config) *Stack[T] {
	s, err := New[T](cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the approximate central-stack population (parked offers are
// logically in-flight pushes, not stack contents).
func (s *Stack[T]) Len() int { return s.central.Len() }

// Drain empties the central stack; teardown/testing helper.
func (s *Stack[T]) Drain() []T { return s.central.Drain() }

// Handle is the per-goroutine operation context (RNG for slot selection).
// Not safe for concurrent use of the same handle.
type Handle[T any] struct {
	s     *Stack[T]
	rng   *xrand.State
	stats *core.OpStats
}

// NewHandle returns an operation handle.
func (s *Stack[T]) NewHandle() *Handle[T] {
	return &Handle[T]{s: s, rng: xrand.New(s.seed.V.Add(0x9e3779b97f4a7c15))}
}

// SetStats points the handle's internal-signal counters at st (nil
// disables, the default): failed central CASes count as CASFailures,
// collision-slot visits as Probes. Operation outcomes (Pushes/Pops/
// EmptyPops) are deliberately not counted here — the backend adapter in
// internal/relax owns those, so totals are not double-counted. st must be
// owned by the handle's goroutine; owner-goroutine only.
func (h *Handle[T]) SetStats(st *core.OpStats) { h.stats = st }

// Push adds v to the stack.
func (h *Handle[T]) Push(v T) {
	s := h.s
	for {
		if s.central.TryPush(v) {
			return
		}
		if h.stats != nil {
			h.stats.CASFailures++
		}
		if h.tryEliminatePush(v) {
			return
		}
	}
}

// Pop removes and returns the top value; ok is false if the stack was
// observed empty (parked pushes are concurrent, so missing them is
// linearizable).
func (h *Handle[T]) Pop() (v T, ok bool) {
	s := h.s
	for {
		v, ok, contended := s.central.TryPop()
		if ok {
			return v, true
		}
		if contended && h.stats != nil {
			h.stats.CASFailures++
		}
		if v, ok := h.tryEliminatePop(); ok {
			return v, true
		}
		if !contended {
			// Central stack observed empty and no partner was parked.
			var zero T
			return zero, false
		}
	}
}

// tryEliminatePush parks v in a random collision slot and waits briefly
// for a popper; in symmetric mode it first tries to fulfil a parked pop.
// It reports whether the value was handed off.
func (h *Handle[T]) tryEliminatePush(v T) bool {
	s := h.s
	i := h.rng.Intn(len(s.slots))
	if h.stats != nil {
		h.stats.Probes++
	}
	if s.cfg.Symmetric {
		if of := s.slots[i].P.Load(); of != nil && of.kind == kindPop {
			if of.state.CompareAndSwap(offerWaiting, offerClaimed) {
				of.value = v
				of.state.Store(offerTaken)
				s.slots[i].P.CompareAndSwap(of, nil)
				return true
			}
		}
	}
	of := &offer[T]{kind: kindPush, value: v}
	if !s.slots[i].P.CompareAndSwap(nil, of) {
		return false // slot busy; caller retries centrally
	}
	for spin := 0; spin < s.cfg.Spins; spin++ {
		if of.state.Load() == offerTaken {
			s.slots[i].P.CompareAndSwap(of, nil)
			return true
		}
		runtime.Gosched()
	}
	if of.state.CompareAndSwap(offerWaiting, offerWithdrawn) {
		s.slots[i].P.CompareAndSwap(of, nil)
		return false
	}
	// Lost the withdraw race: a popper took it between our last check and
	// the CAS. That is a successful elimination.
	s.slots[i].P.CompareAndSwap(of, nil)
	return true
}

// tryEliminatePop scans one random collision slot for a waiting pusher and
// claims its value if possible; in symmetric mode an empty slot is used to
// park a pop request a pusher can fulfil.
func (h *Handle[T]) tryEliminatePop() (v T, ok bool) {
	s := h.s
	i := h.rng.Intn(len(s.slots))
	if h.stats != nil {
		h.stats.Probes++
	}
	of := s.slots[i].P.Load()
	if of != nil {
		if of.kind == kindPush && of.state.CompareAndSwap(offerWaiting, offerTaken) {
			s.slots[i].P.CompareAndSwap(of, nil)
			return of.value, true
		}
		var zero T
		return zero, false
	}
	if !s.cfg.Symmetric {
		var zero T
		return zero, false
	}
	// Park a pop request.
	req := &offer[T]{kind: kindPop}
	if !s.slots[i].P.CompareAndSwap(nil, req) {
		var zero T
		return zero, false
	}
	for spin := 0; spin < s.cfg.Spins; spin++ {
		if req.state.Load() == offerTaken {
			s.slots[i].P.CompareAndSwap(req, nil)
			return req.value, true
		}
		runtime.Gosched()
	}
	if req.state.CompareAndSwap(offerWaiting, offerWithdrawn) {
		s.slots[i].P.CompareAndSwap(req, nil)
		var zero T
		return zero, false
	}
	// A pusher claimed the request; its value is (or is about to be)
	// published. Wait for the handoff to complete — the fulfiller finishes
	// in a bounded number of its own steps.
	for req.state.Load() != offerTaken {
		runtime.Gosched()
	}
	s.slots[i].P.CompareAndSwap(req, nil)
	return req.value, true
}
