package elimination

import (
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/seqspec"
)

// TestMicroHistoriesLinearizable records many small concurrent histories
// and verifies each has a strict-LIFO linearization via the exhaustive
// checker — the strongest correctness statement we can make mechanically
// for the elimination stack, whose collisions bypass the central stack.
func TestMicroHistoriesLinearizable(t *testing.T) {
	const (
		rounds  = 100
		workers = 3
		opsPerW = 4
	)
	for round := 0; round < rounds; round++ {
		s := MustNew[uint64](Config{Slots: 2, Spins: 4})
		var clock atomic.Int64
		var label atomic.Uint64
		hist := make([][]seqspec.IntervalOp, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				h := s.NewHandle()
				for i := 0; i < opsPerW; i++ {
					begin := clock.Add(1)
					if (w+i)%2 == 0 {
						v := label.Add(1)
						h.Push(v)
						hist[w] = append(hist[w], seqspec.IntervalOp{
							Kind: seqspec.OpPush, Value: v, Begin: begin, End: clock.Add(1),
						})
					} else {
						v, ok := h.Pop()
						hist[w] = append(hist[w], seqspec.IntervalOp{
							Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
						})
					}
				}
			}(w)
		}
		wg.Wait()
		var all []seqspec.IntervalOp
		for _, h := range hist {
			all = append(all, h...)
		}
		// Drain to complete the history (sequential tail, still within
		// the size limit: 12 concurrent + up to 7 drain ops).
		h := s.NewHandle()
		for {
			begin := clock.Add(1)
			v, ok := h.Pop()
			all = append(all, seqspec.IntervalOp{
				Kind: seqspec.OpPop, Value: v, Empty: !ok, Begin: begin, End: clock.Add(1),
			})
			if !ok {
				break
			}
		}
		if len(all) > seqspec.MaxLinearizableOps {
			t.Fatalf("round %d: history of %d ops exceeds checker limit", round, len(all))
		}
		if err := seqspec.CheckLinearizableLIFO(all); err != nil {
			t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
		}
	}
}
