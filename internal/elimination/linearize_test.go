package elimination

import (
	"testing"

	"stack2d/internal/seqspec"
)

// TestMicroHistoriesLinearizable records many small concurrent histories
// and verifies each has a strict-LIFO linearization via the exhaustive
// checker — the strongest correctness statement we can make mechanically
// for the elimination stack, whose collisions bypass the central stack.
// The recording scaffolding is the shared seqspec one; each goroutine
// (including the drain's) gets its own handle. 3 workers × 4 ops + up to
// 7 drain ops stays within seqspec.MaxLinearizableOps.
func TestMicroHistoriesLinearizable(t *testing.T) {
	const (
		rounds  = 100
		workers = 3
		opsPerW = 4
	)
	for round := 0; round < rounds; round++ {
		s := MustNew[uint64](Config{Slots: 2, Spins: 4})
		all := seqspec.CollectMicroHistory(workers, opsPerW, func(int) seqspec.WorkerFuncs {
			h := s.NewHandle()
			return seqspec.WorkerFuncs{Push: h.Push, Pop: h.Pop}
		})
		if len(all) > seqspec.MaxLinearizableOps {
			t.Fatalf("round %d: history of %d ops exceeds checker limit", round, len(all))
		}
		if err := seqspec.CheckLinearizableLIFO(all); err != nil {
			t.Fatalf("round %d: %v\nhistory: %+v", round, err, all)
		}
	}
}
