package adapt

import (
	"fmt"
	"math"
	"sync"
	"time"

	"stack2d/internal/core"
)

// This file is the backend-selection half of the adaptation layer: where
// the Controller steers one structure's geometry, the Selector chooses
// *which* structure should be live, driving an engine.Switcher through
// the BackendTarget interface. The two compose — a Selector can hold the
// 2D backend active while a Controller retunes its window — but each is
// useful alone.

// BackendTarget is what the Selector steers: a hot-swappable engine
// exposing its registered catalogue, the per-backend semantics budgets,
// and the same aggregated counters every other adaptation surface reads.
// *engine.Switcher satisfies it for any element type. (Declared here, in
// the policy layer, so engine does not import adapt — the same direction
// as Reconfigurable and core.)
type BackendTarget interface {
	ActiveBackend() string
	Backends() []string
	BackendKBound(name string) (int64, bool)
	SwapBackend(name, reason string) error
	StatsSnapshot() core.OpStats
}

// Swap reasons the Selector emits; they flow verbatim into
// engine.SwapRecord, the KindBackendSwap trace events and the
// cmd/adapttune CSV.
const (
	// ReasonKBudgetZero: the semantics budget dropped to zero — only an
	// exact structure may serve, whatever the performance cost.
	ReasonKBudgetZero = "k-budget-zero"
	// ReasonKBudgetExceeded: the active backend's bound overshoots a
	// shrunken (but nonzero) budget; move to the best backend within it.
	ReasonKBudgetExceeded = "k-budget-exceeded"
	// ReasonSymmetricStorm: high contention on a push/pop-balanced mix —
	// elimination pairs operations off the hot path.
	ReasonSymmetricStorm = "symmetric-storm"
	// ReasonMixedLoad: high contention without the symmetry elimination
	// needs — the 2D structure's disjoint-access relaxation is the tool.
	ReasonMixedLoad = "mixed-load"
)

// SelectorPolicy configures a Selector. Zero fields default at NewSelector.
type SelectorPolicy struct {
	// KBudget is the initial semantics ceiling: the Selector never
	// activates a backend whose KBound exceeds it, and evicts the active
	// backend when the budget shrinks below its bound (checked before
	// every other rule, even on idle ticks, so budget enforcement is
	// deterministic). Zero or negative means unconstrained — a zero
	// *budget* (strict backends only) is imposed at runtime with
	// SetKBudget(0), the usual shape of a mid-run tolerance collapse.
	KBudget int64
	// Tick is the sampling interval of the background loop. Default 10ms.
	Tick time.Duration
	// HighCAS is the CAS-failures-per-operation level that counts as a
	// contention storm. Default 0.05 (same scale as Policy.HighCAS).
	HighCAS float64
	// SymmetryBand bounds |push fraction − 0.5| for a storm to count as
	// symmetric (elimination-friendly). Default 0.1.
	SymmetryBand float64
	// Cooldown is how many decision ticks the Selector holds after a swap
	// so the signals resettle on the new backend. Default 2.
	Cooldown int
	// MinOpsPerTick is the signal floor; quieter ticks only enforce the
	// budget. Default 128.
	MinOpsPerTick uint64
}

func (p SelectorPolicy) withDefaults() SelectorPolicy {
	if p.KBudget <= 0 {
		p.KBudget = -1
	}
	if p.Tick == 0 {
		p.Tick = 10 * time.Millisecond
	}
	if p.HighCAS == 0 {
		p.HighCAS = 0.05
	}
	if p.SymmetryBand == 0 {
		p.SymmetryBand = 0.1
	}
	if p.Cooldown == 0 {
		p.Cooldown = 2
	}
	if p.MinOpsPerTick == 0 {
		p.MinOpsPerTick = 128
	}
	return p
}

// Validate reports whether the (defaulted) policy is coherent.
func (p SelectorPolicy) Validate() error {
	switch {
	case p.Tick <= 0:
		return fmt.Errorf("adapt: Tick must be positive, got %v", p.Tick)
	case p.HighCAS < 0:
		return fmt.Errorf("adapt: HighCAS must be >= 0, got %g", p.HighCAS)
	case p.SymmetryBand < 0 || p.SymmetryBand > 0.5:
		return fmt.Errorf("adapt: SymmetryBand must be in [0,0.5], got %g", p.SymmetryBand)
	}
	return nil
}

// SelectorRecord is one row of the Selector's time series.
type SelectorRecord struct {
	Tick    int
	Elapsed time.Duration

	Ops        uint64
	Throughput float64
	CASPerOp   float64
	// PushFrac is pushes over completed operations (the symmetry signal).
	PushFrac float64

	// Action is "swap", "hold", "cooldown", "idle" or "error:...".
	Action string
	// Reason is the swap trigger (one of the Reason constants) when
	// Action is "swap", empty otherwise.
	Reason string
	// Backend is the active backend after the decision; K its bound.
	Backend string
	K       int64
}

// Selector drives a BackendTarget's active backend from its observed
// signals. Create with NewSelector; run with Start/Stop or call Step
// manually for deterministic control.
type Selector struct {
	target BackendTarget
	pol    SelectorPolicy

	mu       sync.Mutex
	kbudget  int64
	cooldown int
	prev     core.OpStats
	hist     []SelectorRecord
	started  bool
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// NewSelector builds a selector for target; the policy is defaulted, then
// validated. The target keeps its current backend until the first
// decision says otherwise.
func NewSelector(target BackendTarget, pol SelectorPolicy) (*Selector, error) {
	pol = pol.withDefaults()
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Selector{
		target:  target,
		pol:     pol,
		kbudget: pol.KBudget,
		prev:    target.StatsSnapshot(),
	}, nil
}

// Policy returns the defaulted policy the selector runs.
func (s *Selector) Policy() SelectorPolicy { return s.pol }

// KBudget returns the current semantics ceiling.
func (s *Selector) KBudget() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kbudget
}

// SetKBudget changes the semantics ceiling live; the next Step enforces
// it (before any performance rule, bypassing cooldown and the idle
// floor). This is the hook a caller pulls when the application's
// tolerance for reordering collapses mid-run.
func (s *Selector) SetKBudget(k int64) {
	s.mu.Lock()
	s.kbudget = k
	s.mu.Unlock()
}

// Start launches the background sampling loop; no-op when running.
func (s *Selector) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.stopCh = make(chan struct{})
	s.doneCh = make(chan struct{})
	stop, done := s.stopCh, s.doneCh
	s.mu.Unlock()
	go s.run(stop, done)
}

// Stop halts the background loop and waits for it; idempotent.
func (s *Selector) Stop() {
	s.mu.Lock()
	if !s.started {
		s.mu.Unlock()
		return
	}
	s.started = false
	stop, done := s.stopCh, s.doneCh
	s.mu.Unlock()
	close(stop)
	<-done
}

func (s *Selector) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tk := time.NewTicker(s.pol.Tick)
	defer tk.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-tk.C:
			s.Step(now.Sub(last))
			last = now
		}
	}
}

// Step performs one selection decision over an interval of the given
// length and appends (and returns) its record.
func (s *Selector) Step(elapsed time.Duration) SelectorRecord {
	s.mu.Lock()
	defer s.mu.Unlock()

	snap := s.target.StatsSnapshot()
	d := snap.Sub(s.prev)
	s.prev = snap

	ops := d.Ops()
	rec := SelectorRecord{Tick: len(s.hist), Elapsed: elapsed, Ops: ops}
	if elapsed > 0 {
		rec.Throughput = float64(ops) / elapsed.Seconds()
	}
	if ops > 0 {
		rec.CASPerOp = float64(d.CASFailures) / float64(ops)
		if completed := d.Pushes + d.Pops; completed > 0 {
			rec.PushFrac = float64(d.Pushes) / float64(completed)
		}
	}

	rec.Action, rec.Reason = s.decide(rec)

	rec.Backend = s.target.ActiveBackend()
	if k, ok := s.target.BackendKBound(rec.Backend); ok {
		rec.K = k
	}
	s.hist = append(s.hist, rec)
	return rec
}

// decide applies the selection rules; s.mu held. Budget enforcement runs
// first and unconditionally — an over-budget backend is evicted even on
// an idle or cooling-down tick — then the performance rules.
func (s *Selector) decide(rec SelectorRecord) (action, reason string) {
	active := s.target.ActiveBackend()
	activeK, _ := s.target.BackendKBound(active)

	if s.kbudget >= 0 && activeK > s.kbudget {
		reason = ReasonKBudgetExceeded
		if s.kbudget == 0 {
			reason = ReasonKBudgetZero
		}
		if name, ok := s.bestWithin(s.kbudget); ok {
			return s.swap(name, reason)
		}
		// Nothing registered fits the budget; hold rather than thrash.
		return "hold", ""
	}

	if rec.Ops < s.pol.MinOpsPerTick {
		return "idle", ""
	}
	if s.cooldown > 0 {
		s.cooldown--
		return "cooldown", ""
	}

	if rec.CASPerOp >= s.pol.HighCAS {
		if math.Abs(rec.PushFrac-0.5) <= s.pol.SymmetryBand {
			// A symmetric storm: elimination pairs the operations off the
			// central structure. Only if it fits the budget.
			if name, ok := s.fits("elimination"); ok && name != active {
				return s.swap(name, ReasonSymmetricStorm)
			}
		}
		// Contention without symmetry (or no elimination registered): the
		// 2D structure spreads the load across sub-stacks.
		if name, ok := s.fits("2D-stack"); ok && name != active {
			return s.swap(name, ReasonMixedLoad)
		}
	}
	return "hold", ""
}

// fits reports whether the named backend is registered and within the
// budget; s.mu held.
func (s *Selector) fits(name string) (string, bool) {
	k, ok := s.target.BackendKBound(name)
	if !ok {
		return "", false
	}
	if s.kbudget >= 0 && k > s.kbudget {
		return "", false
	}
	return name, true
}

// bestWithin picks the registered backend with the largest bound not
// exceeding the budget (the least semantics given up); s.mu held.
func (s *Selector) bestWithin(budget int64) (string, bool) {
	best, bestK, found := "", int64(-1), false
	for _, name := range s.target.Backends() {
		k, ok := s.target.BackendKBound(name)
		if !ok || k > budget {
			continue
		}
		if !found || k > bestK {
			best, bestK, found = name, k, true
		}
	}
	return best, found
}

// swap performs the move and arms the cooldown; s.mu held.
func (s *Selector) swap(name, reason string) (string, string) {
	if err := s.target.SwapBackend(name, reason); err != nil {
		return "error:" + err.Error(), reason
	}
	s.cooldown = s.pol.Cooldown
	return "swap", reason
}

// History returns a copy of the selection records accumulated so far.
func (s *Selector) History() []SelectorRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SelectorRecord, len(s.hist))
	copy(out, s.hist)
	return out
}
