package adapt

import (
	"testing"
	"time"

	"stack2d/internal/core"
)

// socketFake is a Reconfigurable + SocketAware target whose stats the test
// scripts directly; it records the requester of every reconfiguration.
type socketFake struct {
	cfg        core.Config
	stats      core.OpStats
	requesters []int
}

func (f *socketFake) Config() core.Config             { return f.cfg }
func (f *socketFake) StatsSnapshot() core.OpStats     { return f.stats }
func (f *socketFake) Reconfigure(c core.Config) error { f.cfg = c; return f.record(-2) }
func (f *socketFake) ReconfigureOnSocket(c core.Config, requester int) error {
	f.cfg = c
	return f.record(requester)
}
func (f *socketFake) record(r int) error {
	f.requesters = append(f.requesters, r)
	return nil
}

// TestControllerReportsPressureSocket: the widening decision carries the
// socket whose CAS pressure dominated the interval to a SocketAware
// target, and TickRecord exposes it.
func TestControllerReportsPressureSocket(t *testing.T) {
	f := &socketFake{cfg: core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}}
	ctrl, err := New(f, Policy{
		Goal:          MaxThroughput,
		MinWidth:      2,
		MaxWidth:      16,
		MinDepth:      8,
		MaxDepth:      64,
		Cooldown:      1,
		MinOpsPerTick: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Interval: 1000 ops, heavy contention, all attributed to socket 1.
	f.stats.Pushes = 1000
	f.stats.CASFailures = 500
	f.stats.SocketCAS[1] = 500
	rec := ctrl.Step(10 * time.Millisecond)
	if rec.PressureSocket != 1 {
		t.Fatalf("PressureSocket = %d, want 1", rec.PressureSocket)
	}
	if rec.Action != "widen-width" {
		t.Fatalf("action = %q, want widen-width", rec.Action)
	}
	if len(f.requesters) != 1 || f.requesters[0] != 1 {
		t.Fatalf("target saw requesters %v, want [1]", f.requesters)
	}

	// A quiet interval attributes to nobody.
	f.stats.Pushes += 1000
	rec = ctrl.Step(10 * time.Millisecond)
	if rec.PressureSocket != -1 {
		t.Fatalf("quiet PressureSocket = %d, want -1", rec.PressureSocket)
	}
}

// TestControllerPlainReconfigureWithoutSocketAware: targets that don't
// implement SocketAware keep seeing plain Reconfigure.
func TestControllerPlainReconfigureWithoutSocketAware(t *testing.T) {
	type plainFake struct{ socketFake }
	f := &plainFake{socketFake{cfg: core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}}}
	// Wrap so only Reconfigurable's methods are visible.
	var target Reconfigurable = struct {
		Reconfigurable
	}{&f.socketFake}
	ctrl, err := New(target, Policy{
		Goal:          MaxThroughput,
		MinWidth:      2,
		MaxWidth:      16,
		MinDepth:      8,
		MaxDepth:      64,
		Cooldown:      1,
		MinOpsPerTick: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.stats.Pushes = 1000
	f.stats.CASFailures = 500
	f.stats.SocketCAS[0] = 500
	if rec := ctrl.Step(10 * time.Millisecond); rec.Action != "widen-width" {
		t.Fatalf("action = %q, want widen-width", rec.Action)
	}
	if len(f.requesters) != 1 || f.requesters[0] != -2 {
		t.Fatalf("plain target saw requesters %v, want [-2] (plain Reconfigure)", f.requesters)
	}
}
