package adapt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stack2d/internal/core"
)

// fakeTarget lets tests feed the controller synthetic signals and observe
// the reconfigurations it issues.
type fakeTarget struct {
	cfg       core.Config
	stats     core.OpStats
	reconfigs []core.Config
}

func (f *fakeTarget) Config() core.Config { return f.cfg }
func (f *fakeTarget) Reconfigure(cfg core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	f.cfg = cfg
	f.reconfigs = append(f.reconfigs, cfg)
	return nil
}
func (f *fakeTarget) StatsSnapshot() core.OpStats { return f.stats }

// feed advances the fake's counters by one interval of the given shape.
func (f *fakeTarget) feed(ops uint64, casPerOp, movesPerOp, probesPerOp float64) {
	f.stats.Pushes += ops / 2
	f.stats.Pops += ops - ops/2
	f.stats.CASFailures += uint64(float64(ops) * casPerOp)
	f.stats.WindowRaises += uint64(float64(ops) * movesPerOp)
	f.stats.Probes += uint64(float64(ops) * probesPerOp)
}

// feedLatency adds latency samples at the given duration to the interval.
func (f *fakeTarget) feedLatency(samples uint64, d time.Duration) {
	f.stats.Latency[core.LatencyBucket(d)] += samples
}

func testPolicy(goal Goal) Policy {
	return Policy{
		Goal:     goal,
		MinWidth: 1, MaxWidth: 8,
		MinDepth: 8, MaxDepth: 32,
		Cooldown:        1,
		MinOpsPerTick:   10,
		ThroughputFloor: 1000,
	}
}

func TestContentionWidensWidthToCapThenDepth(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 1, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	var widths []int
	for i := 0; i < 40; i++ {
		f.feed(1000, 0.5, 0, 2)
		rec := c.Step(10 * time.Millisecond)
		if rec.Action == "widen-width" || rec.Action == "widen-depth" {
			widths = append(widths, rec.Width)
		}
	}
	// Width doubles monotonically to the cap, then depth takes over.
	cfg := f.cfg
	if cfg.Width != 8 || cfg.Depth != 32 {
		t.Fatalf("sustained contention ended at %+v, want width 8 depth 32", cfg)
	}
	for i := 1; i < len(widths); i++ {
		if widths[i] < widths[i-1] {
			t.Fatalf("width moved non-monotonically: %v", widths)
		}
	}
	// Saturated at every cap: further pressure holds.
	f.feed(1000, 0.5, 0.5, 2)
	c.Step(10 * time.Millisecond) // burns any remaining cooldown
	f.feed(1000, 0.5, 0.5, 2)
	c.Step(10 * time.Millisecond)
	f.feed(1000, 0.5, 0.5, 2)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "hold" {
		t.Fatalf("expected hold at the caps, got %q", rec.Action)
	}
}

func TestWindowChurnDeepensDepth(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	// No CAS contention, heavy window churn: the depth knob moves, width
	// stays (until depth is capped).
	f.feed(1000, 0, 0.05, 1.2)
	rec := c.Step(10 * time.Millisecond)
	if rec.Action != "widen-depth" {
		t.Fatalf("expected widen-depth, got %q", rec.Action)
	}
	if f.cfg.Width != 2 || f.cfg.Depth != 16 || f.cfg.Shift != 16 {
		t.Fatalf("after churn tick config = %+v", f.cfg)
	}
}

func TestCeilingIsNeverExceeded(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 1, Depth: 8, Shift: 8, RandomHops: 2}}
	pol := testPolicy(MaxThroughput)
	pol.KCeiling = 100 // width 2 @ depth 8 is k=24; width 4 is 72; width 8 is 168
	c, err := New(f, pol)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		f.feed(1000, 0.5, 0.05, 2) // both widen signals, forever
		rec := c.Step(10 * time.Millisecond)
		if rec.K > pol.KCeiling {
			t.Fatalf("tick %d: K %d exceeds ceiling %d", i, rec.K, pol.KCeiling)
		}
	}
	if got := f.cfg.K(); got > pol.KCeiling {
		t.Fatalf("final K %d above ceiling", got)
	}
	if got := f.cfg; got.Width != 4 || got.Depth != 8 {
		// width 4, depth 8 (k=72) is the largest admissible geometry:
		// width 8 (k=168) and depth 16 at width 4 (k=144) both violate.
		t.Fatalf("final config %+v, want width 4 depth 8", got)
	}
}

func TestQuietWideStructureNarrows(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 8, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		f.feed(1000, 0, 0, 10) // no contention, no churn, expensive searches
		c.Step(10 * time.Millisecond)
	}
	if f.cfg.Width != 1 {
		t.Fatalf("quiet wide structure ended at width %d, want 1", f.cfg.Width)
	}

	// Quiet and cheap: hold.
	before := len(f.reconfigs)
	for i := 0; i < 5; i++ {
		f.feed(1000, 0, 0, 1.2)
		if rec := c.Step(10 * time.Millisecond); rec.Action != "hold" {
			t.Fatalf("expected hold, got %q", rec.Action)
		}
	}
	if len(f.reconfigs) != before {
		t.Fatal("controller reconfigured during a hold phase")
	}
}

func TestIdleTicksNeverMove(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 1, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f.feed(5, 1.0, 1.0, 100) // huge signals, but only 5 ops (< MinOpsPerTick)
		if rec := c.Step(10 * time.Millisecond); rec.Action != "idle" {
			t.Fatalf("expected idle, got %q", rec.Action)
		}
	}
	if len(f.reconfigs) != 0 {
		t.Fatalf("idle ticks issued %d reconfigs", len(f.reconfigs))
	}
}

func TestMinRelaxationHoldsFloor(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 8, Depth: 32, Shift: 32, RandomHops: 2}}
	pol := testPolicy(MinRelaxation)
	c, err := New(f, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Throughput far above floor: narrow toward strict (depth first, then
	// width), monotonically.
	prevK := f.cfg.K()
	for i := 0; i < 40; i++ {
		f.feed(1000, 0, 0, 2) // 1000 ops / 10ms = 100k ops/s >> floor 1000
		rec := c.Step(10 * time.Millisecond)
		if rec.K > prevK {
			t.Fatalf("tick %d: K rose from %d to %d during narrowing", i, prevK, rec.K)
		}
		prevK = rec.K
	}
	if f.cfg.Width != 1 || f.cfg.Depth != 8 {
		t.Fatalf("easy load ended at %+v, want the minimal geometry", f.cfg)
	}
	// Throughput below floor: widen again.
	for i := 0; i < 6; i++ {
		f.feed(11, 0.5, 0, 2) // 11 ops / 100ms = 110 ops/s < floor
		c.Step(100 * time.Millisecond)
	}
	if f.cfg.K() == 0 {
		t.Fatal("controller did not widen when throughput fell below the floor")
	}
}

// TestTargetLatencySteersByDominantSignal drives the latency goal through
// its three above-target responses and the below-target tightening path.
func TestTargetLatencySteersByDominantSignal(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}}
	pol := testPolicy(TargetLatency)
	pol.LatencyTarget = time.Millisecond
	c, err := New(f, pol)
	if err != nil {
		t.Fatal(err)
	}
	over := 4 * time.Millisecond    // whole bucket above the target
	under := 100 * time.Microsecond // whole bucket below target·(1−margin)

	// Tail over target with contention dominant: widen width.
	f.feed(1000, 0.5, 0, 2)
	f.feedLatency(100, over)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "widen-width" {
		t.Fatalf("contended tail: got %q, want widen-width", rec.Action)
	}
	f.feed(1000, 0, 0, 2) // burn cooldown
	f.feedLatency(100, under)
	c.Step(10 * time.Millisecond)

	// Tail over target with window churn dominant: deepen.
	f.feed(1000, 0, 0.05, 2)
	f.feedLatency(100, over)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "widen-depth" {
		t.Fatalf("churning tail: got %q, want widen-depth", rec.Action)
	}
	f.feed(1000, 0, 0, 2)
	f.feedLatency(100, under)
	c.Step(10 * time.Millisecond)

	// Tail over target with quiet signals and expensive searches: narrow.
	f.feed(1000, 0, 0, 8)
	f.feedLatency(100, over)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "narrow-width" {
		t.Fatalf("search-cost tail: got %q, want narrow-width", rec.Action)
	}
	f.feed(1000, 0, 0, 2)
	f.feedLatency(100, under)
	c.Step(10 * time.Millisecond)

	// Tail over target that NO structural signal explains (quiet, cheap
	// searches — e.g. scheduler stalls): hold, don't ratchet the window.
	f.feed(1000, 0, 0, 1.2)
	f.feedLatency(100, over)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "hold" {
		t.Fatalf("unexplained tail: got %q, want hold", rec.Action)
	}

	// Comfortably under target and quiet: spend the budget on tighter k.
	kBefore := f.cfg.K()
	f.feed(1000, 0, 0, 2)
	f.feedLatency(100, under)
	rec := c.Step(10 * time.Millisecond)
	if rec.Action != "narrow-depth" && rec.Action != "narrow-width" {
		t.Fatalf("latency headroom: got %q, want a narrowing move", rec.Action)
	}
	if f.cfg.K() >= kBefore && kBefore > 0 {
		t.Fatalf("k did not tighten under latency headroom: %d -> %d", kBefore, f.cfg.K())
	}

	// Too few samples: hold regardless of the estimate.
	f.feed(1000, 0.5, 0, 2)
	f.feedLatency(1, over)
	c.Step(10 * time.Millisecond) // burn cooldown
	f.feed(1000, 0.5, 0, 2)
	f.feedLatency(1, over)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "hold" {
		t.Fatalf("starved sampler: got %q, want hold", rec.Action)
	}
}

// TestMinEnergyReducesWorkAboveFloor: with throughput headroom the energy
// goal deepens away window churn, then narrows away search cost, and it
// widens again the moment throughput drops below the floor.
func TestMinEnergyReducesWorkAboveFloor(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 4, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MinEnergy))
	if err != nil {
		t.Fatal(err)
	}
	// 1000 ops / 10ms = 100k ops/s, far above the 1000 floor; churn high.
	f.feed(1000, 0, 0.05, 2)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "widen-depth" {
		t.Fatalf("churn above floor: got %q, want widen-depth", rec.Action)
	}
	f.feed(1000, 0, 0, 2)
	c.Step(10 * time.Millisecond) // cooldown
	// Churn gone, searches expensive: narrow.
	f.feed(1000, 0, 0, 8)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "narrow-width" {
		t.Fatalf("search cost above floor: got %q, want narrow-width", rec.Action)
	}
	f.feed(1000, 0, 0, 2)
	c.Step(10 * time.Millisecond) // cooldown
	// Cheap and above floor: hold.
	f.feed(1000, 0, 0, 1.5)
	if rec := c.Step(10 * time.Millisecond); rec.Action != "hold" {
		t.Fatalf("cheap ops above floor: got %q, want hold", rec.Action)
	}
	// Below the floor: defend it.
	f.feed(11, 0.5, 0, 2) // 110 ops/s < 1000
	if rec := c.Step(100 * time.Millisecond); rec.Action != "widen-width" && rec.Action != "widen-depth" {
		t.Fatalf("below floor: got %q, want a widening move", rec.Action)
	}
}

// TestTickRecordCarriesLatencyAndEnergy: the new signal fields flow into
// the history.
func TestTickRecordCarriesLatencyAndEnergy(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 2, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	f.feed(1000, 0, 0.01, 3)
	f.feedLatency(64, 500*time.Microsecond)
	rec := c.Step(10 * time.Millisecond)
	if rec.LatencySamples != 64 {
		t.Fatalf("LatencySamples = %d, want 64", rec.LatencySamples)
	}
	if rec.P99 < 262144 || rec.P99 > 524288 { // the 500µs bucket
		t.Fatalf("P99 = %v outside the fed bucket", rec.P99)
	}
	if rec.P50 <= 0 || rec.P50 > rec.P99 {
		t.Fatalf("P50 = %v inconsistent with P99 %v", rec.P50, rec.P99)
	}
	if want := rec.MovesPerOp + rec.ProbesPerOp; rec.EnergyPerOp != want {
		t.Fatalf("EnergyPerOp = %g, want moves+probes = %g", rec.EnergyPerOp, want)
	}
}

func TestHistoryRecordsSeries(t *testing.T) {
	f := &fakeTarget{cfg: core.Config{Width: 1, Depth: 8, Shift: 8, RandomHops: 2}}
	c, err := New(f, testPolicy(MaxThroughput))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		f.feed(1000, 0.5, 0.01, 3)
		c.Step(10 * time.Millisecond)
	}
	h := c.History()
	if len(h) != 7 {
		t.Fatalf("history length %d, want 7", len(h))
	}
	for i, rec := range h {
		if rec.Tick != i {
			t.Fatalf("record %d has Tick %d", i, rec.Tick)
		}
		if rec.Ops != 1000 {
			t.Fatalf("record %d Ops = %d", i, rec.Ops)
		}
		if rec.K != (2*rec.Depth+rec.Shift)*int64(rec.Width-1) {
			t.Fatalf("record %d K %d inconsistent with geometry", i, rec.K)
		}
		if rec.CASPerOp == 0 || rec.MovesPerOp == 0 {
			t.Fatalf("record %d lost signals: %+v", i, rec)
		}
	}
}

func TestPolicyValidation(t *testing.T) {
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, Policy{Goal: MinRelaxation}); err == nil {
		t.Fatal("MinRelaxation without a floor was accepted")
	}
	pol := testPolicy(MaxThroughput)
	pol.LowCAS = 1
	pol.HighCAS = 0.1
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, pol); err == nil {
		t.Fatal("LowCAS > HighCAS was accepted")
	}
	pol = testPolicy(MaxThroughput)
	pol.LowMoves = 1
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, pol); err == nil {
		t.Fatal("LowMoves > HighMoves was accepted")
	}
	pol = testPolicy(MaxThroughput)
	pol.MaxWidth = 2
	pol.MinWidth = 4
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, pol); err == nil {
		t.Fatal("MaxWidth < MinWidth was accepted")
	}
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, Policy{Goal: TargetLatency}); err == nil {
		t.Fatal("TargetLatency without a LatencyTarget was accepted")
	}
	pol = Policy{Goal: MinEnergy}
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, pol); err == nil {
		t.Fatal("MinEnergy without a ThroughputFloor was accepted")
	}
	pol = testPolicy(TargetLatency)
	pol.LatencyTarget = time.Millisecond
	pol.LatencyMargin = 1.5
	if _, err := New(&fakeTarget{cfg: core.DefaultConfig(1)}, pol); err == nil {
		t.Fatal("LatencyMargin >= 1 was accepted")
	}
}

// TestControllerLive runs the background loop against a real stack under
// real load and checks the ceiling holds and the structure stays
// consistent whatever the machine's contention profile is.
func TestControllerLive(t *testing.T) {
	s := core.MustNew[uint64](core.Config{Width: 1, Depth: 8, Shift: 8, RandomHops: 1})
	pol := Policy{
		Goal:     MaxThroughput,
		KCeiling: 4096,
		Tick:     2 * time.Millisecond,
		MinWidth: 1, MaxWidth: 16,
		MinDepth: 8, MaxDepth: 64,
		MinOpsPerTick: 64,
	}
	c, err := New(s, pol)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	defer c.Stop()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := s.NewHandle()
			label := uint64(id+1) << 40
			for !stop.Load() {
				label++
				h.Push(label)
				h.Pop()
			}
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	c.Stop()
	c.Stop() // idempotent

	hist := c.History()
	if len(hist) == 0 {
		t.Fatal("controller recorded no ticks")
	}
	for _, rec := range hist {
		if rec.K > pol.KCeiling {
			t.Fatalf("tick %d exceeded ceiling: K=%d", rec.Tick, rec.K)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
