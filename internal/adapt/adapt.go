// Package adapt implements a feedback controller that retunes a 2D-Stack's
// window geometry at runtime — the "continuously relaxes semantics for
// better performance" direction of the paper's title taken literally.
//
// The controller samples the stack's aggregated operation counters
// (core.Stack.StatsSnapshot) on a fixed tick and computes the three
// signals the paper's step-complexity analysis identifies as the cost
// drivers, each steering one geometry knob:
//
//   - contention — failed descriptor CASes per operation. High contention
//     means too many threads collide on too few sub-stacks: widen the
//     structure (double width — more disjoint access).
//   - window churn — Global window moves per operation. High churn means
//     the window band is too shallow for the operation mix: deepen it
//     (double depth, shift = depth — fewer global coordination events).
//   - search cost — sub-stack probes per operation. High search cost with
//     neither of the above means the structure is wider than the offered
//     load needs: narrow it (halve width — cheaper searches, tighter
//     semantics).
//
// Each decision moves exactly one knob one doubling/halving step, then
// holds for a cooldown so the signals resettle: movement is monotone per
// decision and geometry never jumps. Every candidate's Theorem 1 bound
// k = (2·depth + shift)·(width − 1) is computed before reconfiguring, so
// the controller never applies a geometry whose bound exceeds the
// configured k ceiling. The one caveat is inherent to live retuning, not
// to the controller: while a width shrink's migration completes, the
// migrated items transiently reorder beyond the steady-state bound
// (DESIGN.md §4, invariant 2); the MaxThroughput goal only shrinks width
// when the structure is quiet, which keeps that transient small.
//
// Four goals are supported: MaxThroughput holds relaxation under a k
// ceiling and chases throughput; MinRelaxation holds throughput above a
// floor and chases the smallest k that sustains it; TargetLatency drives
// the structures' sampled P99 operation latency to a configured target
// (widening when contention pushes the tail up, narrowing or deepening
// otherwise, and spending spare latency budget on tighter semantics); and
// MinEnergy minimises the structure's work per operation — window moves
// plus probes, the coherence-traffic proxy — subject to a throughput
// floor. The latency signal is the structures' own 1-in-N sampled
// histogram (core.OpStats.Latency), which flows through the same
// StatsSnapshot aggregation as every other counter, so latency-targeted
// control needs no harness instrumentation.
//
// Placement-aware targets (SocketAware) additionally receive, with every
// geometry change, the socket whose CAS pressure dominated the deciding
// interval (core.OpStats.SocketCAS attribution), so a LocalFirst placement
// policy can home the new sub-structures on the socket that asked for them
// and shrink away from it last — the NUMA-aware width placement of
// DESIGN.md §7.
package adapt

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"stack2d/internal/core"
)

// Goal selects what the controller optimises for.
type Goal int

const (
	// MaxThroughput maximises operations/second subject to the active
	// geometry's k bound never exceeding Policy.KCeiling.
	MaxThroughput Goal = iota
	// MinRelaxation minimises the k bound subject to throughput staying
	// above Policy.ThroughputFloor.
	MinRelaxation
	// TargetLatency drives the sampled P99 operation latency to at most
	// Policy.LatencyTarget: above the target it widens when contention is
	// the dominant signal (CAS pressure pushes the tail up), deepens when
	// window churn is, and narrows otherwise (search cost); comfortably
	// below the target with quiet signals it reduces k, spending the spare
	// latency budget on tighter semantics. KCeiling still caps every
	// candidate.
	TargetLatency
	// MinEnergy minimises the structure's work per operation — window
	// moves plus probes per op, the proxy for coherence traffic and hence
	// energy — subject to throughput staying above Policy.ThroughputFloor:
	// below the floor it widens to defend throughput; above the floor
	// (with margin) it deepens while window churn dominates and narrows
	// while search cost does.
	MinEnergy
)

func (g Goal) String() string {
	switch g {
	case MaxThroughput:
		return "max-throughput"
	case MinRelaxation:
		return "min-relaxation"
	case TargetLatency:
		return "latency-target"
	case MinEnergy:
		return "energy-per-op"
	default:
		return fmt.Sprintf("Goal(%d)", int(g))
	}
}

// Policy configures a Controller. Zero fields are defaulted at New (see
// DefaultPolicy); the zero value as a whole selects the MaxThroughput goal
// with an uncapped ladder sized for GOMAXPROCS.
type Policy struct {
	// Goal selects the objective; see the Goal constants.
	Goal Goal
	// KCeiling is the hard cap on the active geometry's Theorem 1 bound;
	// candidates above it are never applied. Zero means uncapped.
	KCeiling int64
	// ThroughputFloor is the ops/second the MinRelaxation goal defends.
	ThroughputFloor float64
	// FloorMargin is the hysteresis band above the floor: MinRelaxation
	// (and MinEnergy) act on their secondary objective only while
	// throughput exceeds floor·(1+margin), so they do not oscillate at the
	// boundary. Default 0.25.
	FloorMargin float64
	// LatencyTarget is the sampled-P99 operation latency the TargetLatency
	// goal drives toward; required (positive) for that goal, ignored by
	// the others.
	LatencyTarget time.Duration
	// LatencyMargin is the hysteresis band below the target: TargetLatency
	// tightens semantics only while P99 stays under target·(1−margin), so
	// it does not oscillate at the boundary. Default 0.25.
	LatencyMargin float64
	// MinLatencySamples is the minimum number of latency samples a tick
	// must observe for the P99 estimate to count as a signal; ticks with
	// fewer hold instead of acting. Default 4 (with the structures' 1-in-64
	// sampling, the default MinOpsPerTick already implies at least ~2).
	MinLatencySamples uint64
	// Tick is the sampling interval of the background controller loop.
	// Default 10ms.
	Tick time.Duration
	// HighCAS is the CAS-failures-per-operation level above which the
	// structure widens. Default 0.05.
	HighCAS float64
	// LowCAS is the level below which contention is considered gone and
	// narrowing becomes admissible. Default 0.005.
	LowCAS float64
	// HighMoves is the window-moves-per-operation level above which the
	// window deepens. Default 0.01.
	HighMoves float64
	// LowMoves is the level below which window churn is considered gone
	// (a narrowing precondition). Default 0.002.
	LowMoves float64
	// HighProbes is the probes-per-operation level above which (with low
	// contention and low churn) the structure narrows. Default 4.
	HighProbes float64
	// MinWidth/MaxWidth bound the horizontal knob. Defaults: 1 and
	// 4·GOMAXPROCS.
	MinWidth, MaxWidth int
	// MinDepth/MaxDepth bound the vertical knob (retuned geometries use
	// shift = depth, the paper's maximum-locality setting). Defaults: 8
	// and 512.
	MinDepth, MaxDepth int64
	// Cooldown is how many decision ticks the controller holds after a
	// reconfiguration before moving again, letting the signals resettle
	// on the new geometry. Default 2.
	Cooldown int
	// MinOpsPerTick is the minimum operation count a tick must observe to
	// be considered a signal; quieter ticks are recorded but never trigger
	// movement. Default 128.
	MinOpsPerTick uint64
}

// DefaultPolicy returns the fully defaulted zero policy.
func DefaultPolicy() Policy {
	return Policy{}.withDefaults()
}

func (p Policy) withDefaults() Policy {
	if p.FloorMargin == 0 {
		p.FloorMargin = 0.25
	}
	if p.LatencyMargin == 0 {
		p.LatencyMargin = 0.25
	}
	if p.MinLatencySamples == 0 {
		p.MinLatencySamples = 4
	}
	if p.Tick == 0 {
		p.Tick = 10 * time.Millisecond
	}
	if p.HighCAS == 0 {
		p.HighCAS = 0.05
	}
	if p.LowCAS == 0 {
		p.LowCAS = 0.005
	}
	if p.HighMoves == 0 {
		p.HighMoves = 0.01
	}
	if p.LowMoves == 0 {
		p.LowMoves = 0.002
	}
	if p.HighProbes == 0 {
		p.HighProbes = 4
	}
	if p.MinWidth == 0 {
		p.MinWidth = 1
	}
	if p.MaxWidth == 0 {
		p.MaxWidth = 4 * runtime.GOMAXPROCS(0)
	}
	if p.MinDepth == 0 {
		p.MinDepth = 8
	}
	if p.MaxDepth == 0 {
		p.MaxDepth = 512
	}
	if p.Cooldown == 0 {
		p.Cooldown = 2
	}
	if p.MinOpsPerTick == 0 {
		p.MinOpsPerTick = 128
	}
	return p
}

// Validate reports whether the (defaulted) policy is coherent.
func (p Policy) Validate() error {
	switch {
	case p.MinWidth < 1:
		return fmt.Errorf("adapt: MinWidth must be >= 1, got %d", p.MinWidth)
	case p.MaxWidth < p.MinWidth:
		return fmt.Errorf("adapt: MaxWidth %d below MinWidth %d", p.MaxWidth, p.MinWidth)
	case p.MinDepth < 1:
		return fmt.Errorf("adapt: MinDepth must be >= 1, got %d", p.MinDepth)
	case p.MaxDepth < p.MinDepth:
		return fmt.Errorf("adapt: MaxDepth %d below MinDepth %d", p.MaxDepth, p.MinDepth)
	case p.Tick <= 0:
		return fmt.Errorf("adapt: Tick must be positive, got %v", p.Tick)
	case p.KCeiling < 0:
		return fmt.Errorf("adapt: KCeiling must be >= 0, got %d", p.KCeiling)
	case p.Goal == MinRelaxation && p.ThroughputFloor <= 0:
		return fmt.Errorf("adapt: MinRelaxation goal needs a positive ThroughputFloor")
	case p.Goal == MinEnergy && p.ThroughputFloor <= 0:
		return fmt.Errorf("adapt: MinEnergy goal needs a positive ThroughputFloor")
	case p.Goal == TargetLatency && p.LatencyTarget <= 0:
		return fmt.Errorf("adapt: TargetLatency goal needs a positive LatencyTarget")
	case p.LatencyMargin < 0 || p.LatencyMargin >= 1:
		return fmt.Errorf("adapt: LatencyMargin must be in [0,1), got %g", p.LatencyMargin)
	case p.LowCAS > p.HighCAS:
		return fmt.Errorf("adapt: LowCAS %g above HighCAS %g", p.LowCAS, p.HighCAS)
	case p.LowMoves > p.HighMoves:
		return fmt.Errorf("adapt: LowMoves %g above HighMoves %g", p.LowMoves, p.HighMoves)
	}
	return nil
}

// Reconfigurable is the structure the controller steers: anything that
// exposes a 2D window geometry, accepts live reconfiguration, and
// aggregates its handles' operation counters. It is satisfied by
// *core.Stack[T] for any T, by the 2D-Queue through twodqueue.Steer (whose
// structurally identical Config converts via Config.Core/FromCore), and by
// the simulation adapters in cmd/adapttune — one controller implementation
// drives all of them, because the decision logic reads only the
// geometry-normalised signals, never the structure itself.
type Reconfigurable interface {
	Config() core.Config
	Reconfigure(core.Config) error
	StatsSnapshot() core.OpStats
}

// SocketAware is optionally implemented by Reconfigurables that place
// sub-structures on sockets (core.Stack, twodqueue.Steerable and the
// simulation targets in cmd/adapttune all do). When the target advertises
// it, the controller routes every geometry change through
// ReconfigureOnSocket with the interval's CAS-pressure socket
// (core.OpStats.PressureSocket over the tick's delta, -1 when no CAS
// failure was attributed), so a LocalFirst placement policy homes new
// slots on — and shrinks away from — the socket that asked. Targets
// without placement simply don't implement it and see plain Reconfigure.
// See DESIGN.md §7.
type SocketAware interface {
	ReconfigureOnSocket(cfg core.Config, requester int) error
}

// TickRecord is one row of the controller's time series: the interval's
// signals and the geometry active after the decision. cmd/adapttune prints
// these as the paper-style convergence figures.
type TickRecord struct {
	Tick    int           // 0-based decision index
	Elapsed time.Duration // interval the signals were measured over

	Ops         uint64  // operations completed in the interval
	Throughput  float64 // ops/second over the interval
	CASPerOp    float64 // contention signal (→ width)
	MovesPerOp  float64 // window-churn signal (→ depth)
	ProbesPerOp float64 // search-cost signal (→ narrowing)
	EmptyFrac   float64 // fraction of pops that reported empty

	// LatencySamples is how many operations the structures latency-sampled
	// in the interval; P50/P99 are the percentile estimates from their
	// histogram (zero when no samples landed). EnergyPerOp is window moves
	// plus probes per operation — the work-per-op signal MinEnergy
	// minimises.
	LatencySamples uint64
	P50            time.Duration
	P99            time.Duration
	EnergyPerOp    float64

	// PressureSocket is the socket with the most CAS failures attributed
	// in the interval (-1 when none) — the requester reported to
	// SocketAware targets when this tick's decision changes the geometry.
	PressureSocket int

	// Action is what the decision did: "widen-width", "widen-depth",
	// "narrow-width", "narrow-depth", "hold", "cooldown" or "idle".
	Action string

	// Geometry active after the decision, and its Theorem 1 bound.
	Width int
	Depth int64
	Shift int64
	K     int64
}

// Observer receives one callback per completed control decision, after the
// TickRecord has been appended to the history. It runs on the controller's
// goroutine with the controller lock held, so implementations must be fast
// and must not call back into the controller. internal/obs provides the
// ring-buffer implementation (obs.TickTracer).
type Observer interface {
	ObserveTick(goal Goal, rec TickRecord)
}

// Controller drives a Reconfigurable's geometry from its observed signals. Create
// with New; run it in the background with Start/Stop, or call Step
// manually for deterministic control (tests, simulation).
type Controller struct {
	target Reconfigurable
	pol    Policy

	mu       sync.Mutex
	cooldown int
	prev     core.OpStats
	// pressure is the current tick's CAS-pressure socket, stashed by Step
	// for apply to hand to SocketAware targets; mu held.
	pressure int
	// obsv receives a callback per Step; nil — the default — costs one
	// predicted branch per tick (not per operation). Guarded by mu, which
	// Step holds at the emission point. See SetObserver and DESIGN.md §8.
	obsv    Observer
	hist    []TickRecord
	started bool
	stopCh  chan struct{}
	doneCh  chan struct{}
}

// New builds a controller for target; the policy is defaulted, then
// validated. The target keeps its current geometry until the first
// decision says otherwise.
func New(target Reconfigurable, pol Policy) (*Controller, error) {
	pol = pol.withDefaults()
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		target:   target,
		pol:      pol,
		prev:     target.StatsSnapshot(),
		pressure: -1,
	}, nil
}

// Policy returns the defaulted policy the controller runs.
func (c *Controller) Policy() Policy { return c.pol }

// SetObserver installs (or, with nil, removes) the controller's tick
// observer. Safe to call while the background loop runs: the observer is
// read under the same lock Step holds, so a tick sees either the old or the
// new observer, never a torn state.
func (c *Controller) SetObserver(o Observer) {
	c.mu.Lock()
	c.obsv = o
	c.mu.Unlock()
}

// Start launches the background sampling loop. Repeated Starts are no-ops
// until Stop is called.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stopCh = make(chan struct{})
	c.doneCh = make(chan struct{})
	stop, done := c.stopCh, c.doneCh
	c.mu.Unlock()
	go c.run(stop, done)
}

// Stop halts the background loop and waits for it to exit. Safe to call
// when not started; idempotent.
func (c *Controller) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	stop, done := c.stopCh, c.doneCh
	c.mu.Unlock()
	close(stop)
	<-done
}

func (c *Controller) run(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	tk := time.NewTicker(c.pol.Tick)
	defer tk.Stop()
	last := time.Now()
	for {
		select {
		case <-stop:
			return
		case now := <-tk.C:
			c.Step(now.Sub(last))
			last = now
		}
	}
}

// Step performs one control decision over an interval of the given length:
// sample, compute signals, possibly move one geometry knob one step, and
// append a TickRecord to the history (also returned). The background loop
// calls it once per tick; tests and simulators drive it manually.
func (c *Controller) Step(elapsed time.Duration) TickRecord {
	c.mu.Lock()
	defer c.mu.Unlock()

	snap := c.target.StatsSnapshot()
	d := snap.Sub(c.prev)
	c.prev = snap

	ops := d.Ops()
	rec := TickRecord{
		Tick:    len(c.hist),
		Elapsed: elapsed,
		Ops:     ops,
	}
	if elapsed > 0 {
		rec.Throughput = float64(ops) / elapsed.Seconds()
	}
	if ops > 0 {
		fo := float64(ops)
		rec.CASPerOp = float64(d.CASFailures) / fo
		rec.MovesPerOp = float64(d.WindowRaises+d.WindowLowers) / fo
		rec.ProbesPerOp = float64(d.Probes) / fo
		rec.EnergyPerOp = rec.MovesPerOp + rec.ProbesPerOp
		if pops := d.Pops + d.EmptyPops; pops > 0 {
			rec.EmptyFrac = float64(d.EmptyPops) / float64(pops)
		}
	}
	rec.LatencySamples = d.LatencySamples()
	if rec.LatencySamples > 0 {
		rec.P50 = d.LatencyPercentile(50)
		rec.P99 = d.LatencyPercentile(99)
	}
	rec.PressureSocket = d.PressureSocket()
	c.pressure = rec.PressureSocket

	rec.Action = c.decide(rec)

	cfg := c.target.Config()
	rec.Width, rec.Depth, rec.Shift, rec.K = cfg.Width, cfg.Depth, cfg.Shift, cfg.K()
	c.hist = append(c.hist, rec)
	// The tick event fires after any reconfiguration this decision applied,
	// so a drained trace reads causally: the structural events a decision
	// caused precede the tick that reported the decision.
	if c.obsv != nil {
		c.obsv.ObserveTick(c.pol.Goal, rec)
	}
	return rec
}

// decide applies the goal's rules to the interval signals; c.mu held.
func (c *Controller) decide(rec TickRecord) string {
	if rec.Ops < c.pol.MinOpsPerTick {
		return "idle"
	}
	if c.cooldown > 0 {
		c.cooldown--
		return "cooldown"
	}
	casDominant := rec.CASPerOp >= c.pol.HighCAS
	churning := rec.MovesPerOp >= c.pol.HighMoves
	quiet := rec.CASPerOp <= c.pol.LowCAS && rec.MovesPerOp <= c.pol.LowMoves
	switch c.pol.Goal {
	case MinRelaxation:
		if rec.Throughput < c.pol.ThroughputFloor {
			return c.widen(casDominant || !churning)
		}
		if rec.Throughput > c.pol.ThroughputFloor*(1+c.pol.FloorMargin) {
			return c.narrowK()
		}
	case TargetLatency:
		if rec.LatencySamples < c.pol.MinLatencySamples {
			return "hold"
		}
		if rec.P99 > c.pol.LatencyTarget {
			// Above target: relieve whatever is stretching the tail.
			if casDominant {
				return c.widen(true) // contention: widen
			}
			if churning {
				return c.widen(false) // window churn: deepen
			}
			if rec.ProbesPerOp >= c.pol.HighProbes {
				return c.narrowWidth() // search cost: narrow
			}
			// A tail none of the structure's signals explain (e.g.
			// scheduler stalls) is not fixable by geometry: hold rather
			// than ratchet the window down for nothing.
			return "hold"
		}
		if float64(rec.P99) < float64(c.pol.LatencyTarget)*(1-c.pol.LatencyMargin) && quiet {
			// Comfortably under target with quiet signals: spend the spare
			// latency budget on tighter semantics.
			return c.narrowK()
		}
	case MinEnergy:
		if rec.Throughput < c.pol.ThroughputFloor {
			return c.widen(casDominant || !churning)
		}
		if rec.Throughput > c.pol.ThroughputFloor*(1+c.pol.FloorMargin) {
			// Headroom above the floor: reduce work per op. Window moves are
			// the global coordination events — deepen while they dominate;
			// then probes — narrow while searches are long.
			if rec.MovesPerOp >= c.pol.HighMoves {
				return c.deepen()
			}
			if rec.ProbesPerOp >= c.pol.HighProbes {
				return c.narrowWidth()
			}
		}
	default: // MaxThroughput
		if casDominant {
			return c.widen(true)
		}
		if churning {
			return c.widen(false)
		}
		if quiet && rec.ProbesPerOp >= c.pol.HighProbes {
			return c.narrowWidth()
		}
	}
	return "hold"
}

// deepen grows only the vertical knob (MinEnergy's window-churn response:
// a deeper band means fewer global window moves per operation); c.mu held.
func (c *Controller) deepen() string {
	if cand, ok := c.deeperDepth(c.target.Config()); ok {
		return c.apply(cand, "widen-depth")
	}
	return "hold"
}

// widen grows the geometry one step: width first when contention is the
// dominant signal (or no signal points at depth), depth first otherwise,
// falling back to the other knob when the preferred one is capped by its
// bound or the k ceiling; c.mu held.
func (c *Controller) widen(widthFirst bool) string {
	cur := c.target.Config()
	widthUp, okW := c.widerWidth(cur)
	depthUp, okD := c.deeperDepth(cur)
	if widthFirst {
		if okW {
			return c.apply(widthUp, "widen-width")
		}
		if okD {
			return c.apply(depthUp, "widen-depth")
		}
	} else {
		if okD {
			return c.apply(depthUp, "widen-depth")
		}
		if okW {
			return c.apply(widthUp, "widen-width")
		}
	}
	return "hold"
}

// narrowWidth halves width (MaxThroughput's only narrowing move: it is
// what reduces search cost); falls back to shallower depth when width is
// already minimal; c.mu held.
func (c *Controller) narrowWidth() string {
	cur := c.target.Config()
	if cand, ok := c.narrowerWidth(cur); ok {
		return c.apply(cand, "narrow-width")
	}
	if cand, ok := c.shallowerDepth(cur); ok {
		return c.apply(cand, "narrow-depth")
	}
	return "hold"
}

// narrowK reduces the relaxation bound for MinRelaxation: shallower window
// first (k scales linearly in depth and the change needs no migration),
// then narrower width; c.mu held.
func (c *Controller) narrowK() string {
	cur := c.target.Config()
	if cand, ok := c.shallowerDepth(cur); ok {
		return c.apply(cand, "narrow-depth")
	}
	if cand, ok := c.narrowerWidth(cur); ok {
		return c.apply(cand, "narrow-width")
	}
	return "hold"
}

func (c *Controller) widerWidth(cur core.Config) (core.Config, bool) {
	cand := cur
	cand.Width *= 2
	if cand.Width > c.pol.MaxWidth {
		cand.Width = c.pol.MaxWidth
	}
	return cand, cand.Width > cur.Width && c.underCeiling(cand)
}

func (c *Controller) deeperDepth(cur core.Config) (core.Config, bool) {
	cand := cur
	cand.Depth *= 2
	if cand.Depth > c.pol.MaxDepth {
		cand.Depth = c.pol.MaxDepth
	}
	cand.Shift = cand.Depth
	return cand, cand.Depth > cur.Depth && c.underCeiling(cand)
}

func (c *Controller) narrowerWidth(cur core.Config) (core.Config, bool) {
	cand := cur
	cand.Width /= 2
	if cand.Width < c.pol.MinWidth {
		cand.Width = c.pol.MinWidth
	}
	return cand, cand.Width < cur.Width
}

func (c *Controller) shallowerDepth(cur core.Config) (core.Config, bool) {
	cand := cur
	cand.Depth /= 2
	if cand.Depth < c.pol.MinDepth {
		cand.Depth = c.pol.MinDepth
	}
	cand.Shift = cand.Depth
	return cand, cand.Depth < cur.Depth
}

func (c *Controller) underCeiling(cand core.Config) bool {
	return c.pol.KCeiling == 0 || cand.K() <= c.pol.KCeiling
}

// apply reconfigures the target and arms the cooldown; c.mu held. A
// SocketAware target additionally learns which socket's CAS pressure asked
// for the change, steering its placement policy.
func (c *Controller) apply(cfg core.Config, action string) string {
	var err error
	if sa, ok := c.target.(SocketAware); ok {
		err = sa.ReconfigureOnSocket(cfg, c.pressure)
	} else {
		err = c.target.Reconfigure(cfg)
	}
	if err != nil {
		return "error:" + err.Error()
	}
	c.cooldown = c.pol.Cooldown
	return action
}

// History returns a copy of the tick records accumulated so far.
func (c *Controller) History() []TickRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TickRecord, len(c.hist))
	copy(out, c.hist)
	return out
}
