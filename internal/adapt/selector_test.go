package adapt

import (
	"testing"
	"time"

	"stack2d/internal/core"
)

// fakeEngine is a deterministic BackendTarget: a fixed catalogue, scripted
// counters, and a swap log.
type fakeEngine struct {
	active   string
	catalog  map[string]int64
	order    []string
	snap     core.OpStats
	swaps    []string // "to:reason"
	swapErrs error
}

func newFakeTarget() *fakeEngine {
	return &fakeEngine{
		active:  "2D-stack",
		order:   []string{"2D-stack", "elimination", "treiber"},
		catalog: map[string]int64{"2D-stack": 93, "elimination": 0, "treiber": 0},
	}
}

func (f *fakeEngine) ActiveBackend() string { return f.active }
func (f *fakeEngine) Backends() []string    { return f.order }
func (f *fakeEngine) BackendKBound(name string) (int64, bool) {
	k, ok := f.catalog[name]
	return k, ok
}
func (f *fakeEngine) SwapBackend(name, reason string) error {
	if f.swapErrs != nil {
		return f.swapErrs
	}
	f.active = name
	f.swaps = append(f.swaps, name+":"+reason)
	return nil
}
func (f *fakeEngine) StatsSnapshot() core.OpStats { return f.snap }

// tick advances the fake's counters by one interval's worth of load and
// steps the selector.
func tick(t *testing.T, s *Selector, f *fakeEngine, pushes, pops, cas uint64) SelectorRecord {
	t.Helper()
	f.snap.Pushes += pushes
	f.snap.Pops += pops
	f.snap.CASFailures += cas
	return s.Step(10 * time.Millisecond)
}

func newSel(t *testing.T, f *fakeEngine, pol SelectorPolicy) *Selector {
	t.Helper()
	s, err := NewSelector(f, pol)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSelectorSymmetricStorm(t *testing.T) {
	f := newFakeTarget()
	f.active = "treiber"
	s := newSel(t, f, SelectorPolicy{})
	// Balanced mix, heavy contention: elimination is the move.
	rec := tick(t, s, f, 500, 500, 100)
	if rec.Action != "swap" || rec.Reason != ReasonSymmetricStorm || rec.Backend != "elimination" {
		t.Fatalf("record %+v", rec)
	}
	// Cooldown holds even if the storm persists.
	if rec = tick(t, s, f, 500, 500, 100); rec.Action != "cooldown" {
		t.Fatalf("after swap: %+v", rec)
	}
}

func TestSelectorMixedLoad(t *testing.T) {
	f := newFakeTarget()
	f.active = "treiber"
	s := newSel(t, f, SelectorPolicy{})
	// Push-heavy contention: elimination can't pair, 2D spreads the load.
	rec := tick(t, s, f, 900, 100, 100)
	if rec.Action != "swap" || rec.Reason != ReasonMixedLoad || rec.Backend != "2D-stack" {
		t.Fatalf("record %+v", rec)
	}
	if rec.K != 93 {
		t.Fatalf("recorded bound %d, want the 2D backend's 93", rec.K)
	}
}

func TestSelectorKBudgetZeroEvictsImmediately(t *testing.T) {
	f := newFakeTarget() // active 2D-stack, k=93
	s := newSel(t, f, SelectorPolicy{})
	// Quiet tick: budget unconstrained, nothing happens.
	if rec := tick(t, s, f, 1, 1, 0); rec.Action != "idle" {
		t.Fatalf("quiet tick: %+v", rec)
	}
	s.SetKBudget(0)
	// Even an idle tick enforces the budget — determinism over signals.
	rec := tick(t, s, f, 1, 1, 0)
	if rec.Action != "swap" || rec.Reason != ReasonKBudgetZero {
		t.Fatalf("budget tick: %+v", rec)
	}
	// Of the two strict backends, registration order breaks the tie —
	// elimination precedes treiber in the fake's catalogue.
	if rec.Backend != "elimination" {
		t.Fatalf("evicted to %q", rec.Backend)
	}
	// Budget restored: contention may move it back.
	s.SetKBudget(1000)
	if rec = tick(t, s, f, 900, 100, 100); rec.Action != "cooldown" {
		t.Fatalf("cooldown after budget swap: %+v", rec)
	}
}

func TestSelectorKBudgetExceededPicksBestFit(t *testing.T) {
	f := newFakeTarget()
	f.catalog["k-segment"] = 7
	f.order = append(f.order, "k-segment")
	s := newSel(t, f, SelectorPolicy{})
	s.SetKBudget(10)
	rec := tick(t, s, f, 500, 500, 0)
	if rec.Action != "swap" || rec.Reason != ReasonKBudgetExceeded {
		t.Fatalf("record %+v", rec)
	}
	// Largest bound within budget: k-segment (7), not the strict pair.
	if rec.Backend != "k-segment" {
		t.Fatalf("evicted to %q, want k-segment", rec.Backend)
	}
}

func TestSelectorHoldsWhenQuiet(t *testing.T) {
	f := newFakeTarget()
	s := newSel(t, f, SelectorPolicy{})
	if rec := tick(t, s, f, 500, 500, 1); rec.Action != "hold" {
		t.Fatalf("quiet load: %+v", rec)
	}
	if len(f.swaps) != 0 {
		t.Fatalf("swaps happened: %v", f.swaps)
	}
}

func TestSelectorHistoryAndStartStop(t *testing.T) {
	f := newFakeTarget()
	s := newSel(t, f, SelectorPolicy{Tick: time.Millisecond})
	s.Start()
	s.Start() // idempotent
	time.Sleep(10 * time.Millisecond)
	s.Stop()
	s.Stop()
	if len(s.History()) == 0 {
		t.Fatal("background loop recorded nothing")
	}
}
