// Package stress contains cross-cutting scenario tests that exercise every
// stack implementation under workload shapes the unit tests do not: burst
// oscillation (fill/drain cycles), empty-heavy churn, handle churn
// (short-lived goroutines), and standing-population soak. Each scenario
// asserts value conservation — the invariant that survives relaxation.
package stress

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/eltree"
	"stack2d/internal/harness"
	"stack2d/internal/ksegment"
	"stack2d/internal/multistack"
	"stack2d/internal/relax"
)

// factories under stress: one of each family, moderately sized.
func stressFactories() []harness.Factory {
	const p = 4
	return []harness.Factory{
		harness.NewTreiberFactory(),
		harness.NewTwoDFactory(core.Config{Width: 8, Depth: 8, Shift: 4, RandomHops: 2}),
		harness.NewEliminationFactory(elimination.Config{Slots: 2, Spins: 4, Symmetric: true}),
		harness.NewKSegmentFactory(ksegment.Config{SegmentSize: 4}),
		harness.NewMultiFactory(multistack.Config{Width: 8, Policy: multistack.Random}, p),
		harness.NewMultiFactory(multistack.Config{Width: 8, Policy: multistack.RandomC2}, p),
		harness.NewMultiFactory(multistack.Config{Width: 8, Policy: multistack.RoundRobin}, p),
		harness.NewFlatCombiningFactory(),
		harness.NewElimTreeFactory(eltree.Config{Depth: 2, PrismSlots: 2, Spins: 2}),
	}
}

// checkConserved drives workers with the given per-worker body and then
// verifies the recovered multiset: every worker reports (pushed, popped
// values); the drain must account for the rest exactly once.
func checkConserved(t *testing.T, f harness.Factory, workers int,
	body func(w harness.Worker, id int, report func(pushed uint64, popped []uint64))) {
	t.Helper()
	inst := f.New()
	var mu sync.Mutex
	var totalPushed uint64
	seen := make(map[uint64]int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			body(inst.NewWorker(), id, func(pushed uint64, popped []uint64) {
				mu.Lock()
				defer mu.Unlock()
				totalPushed += pushed
				for _, v := range popped {
					seen[v]++
				}
			})
		}(i)
	}
	wg.Wait()
	drainer := inst.NewWorker()
	for {
		v, ok := drainer.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	if uint64(len(seen)) != totalPushed {
		t.Fatalf("%s: recovered %d distinct values, pushed %d", f.Name, len(seen), totalPushed)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("%s: value %#x recovered %d times", f.Name, v, n)
		}
	}
}

// TestBurstOscillation alternates fill bursts with drain bursts — the
// window has to move constantly, segments grow and shrink, elimination
// phases flip between push- and pop-dominated.
func TestBurstOscillation(t *testing.T) {
	for _, f := range stressFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			checkConserved(t, f, 4, func(w harness.Worker, id int, report func(uint64, []uint64)) {
				base := uint64(id+1) << 40
				var pushed uint64
				var popped []uint64
				for cycle := 0; cycle < 30; cycle++ {
					for i := 0; i < 50; i++ {
						pushed++
						w.Push(base | pushed)
					}
					for i := 0; i < 50; i++ {
						if v, ok := w.Pop(); ok {
							popped = append(popped, v)
						}
					}
				}
				report(pushed, popped)
			})
		})
	}
}

// TestEmptyHeavyChurn keeps the structure near empty: pops outnumber
// pushes 3:1, hammering the empty-detection paths (window floor scans,
// segment unlinking, collision timeouts).
func TestEmptyHeavyChurn(t *testing.T) {
	for _, f := range stressFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			checkConserved(t, f, 4, func(w harness.Worker, id int, report func(uint64, []uint64)) {
				base := uint64(id+1) << 40
				var pushed uint64
				var popped []uint64
				for i := 0; i < 2500; i++ {
					if i%4 == 0 {
						pushed++
						w.Push(base | pushed)
					} else if v, ok := w.Pop(); ok {
						popped = append(popped, v)
					}
				}
				report(pushed, popped)
			})
		})
	}
}

// TestHandleChurn spawns many short-lived goroutines, each with a fresh
// handle for a few operations — stressing handle registration (flat
// combining's publication list, anchor initialisation).
func TestHandleChurn(t *testing.T) {
	for _, f := range stressFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			inst := f.New()
			var label atomic.Uint64
			var mu sync.Mutex
			seen := make(map[uint64]int)
			var wg sync.WaitGroup
			const goroutines = 64
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					w := inst.NewWorker()
					var popped []uint64
					for i := 0; i < 40; i++ {
						w.Push(label.Add(1))
						if v, ok := w.Pop(); ok {
							popped = append(popped, v)
						}
					}
					mu.Lock()
					for _, v := range popped {
						seen[v]++
					}
					mu.Unlock()
				}()
			}
			wg.Wait()
			drainer := inst.NewWorker()
			for {
				v, ok := drainer.Pop()
				if !ok {
					break
				}
				mu.Lock()
				seen[v]++
				mu.Unlock()
			}
			want := int(label.Load())
			if len(seen) != want {
				t.Fatalf("recovered %d distinct values, pushed %d", len(seen), want)
			}
			for v, n := range seen {
				if n != 1 {
					t.Fatalf("value %d recovered %d times", v, n)
				}
			}
		})
	}
}

// TestSoakStandingPopulation holds a large standing population under
// balanced churn and verifies the population count afterwards — window
// drift, counter drift or segment leaks would show up as a wrong Len.
func TestSoakStandingPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, f := range stressFactories() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			inst := f.New()
			pre := inst.NewWorker()
			const standing = 10000
			for i := 1; i <= standing; i++ {
				pre.Push(uint64(i))
			}
			var wg sync.WaitGroup
			var imbalance atomic.Int64 // pushes - pops by the churn phase
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					w := inst.NewWorker()
					base := uint64(g+1) << 40
					n := uint64(0)
					for i := 0; i < 5000; i++ {
						if i%2 == 0 {
							n++
							w.Push(base | n)
							imbalance.Add(1)
						} else if _, ok := w.Pop(); ok {
							imbalance.Add(-1)
						}
					}
				}(g)
			}
			wg.Wait()
			want := standing + int(imbalance.Load())
			if got := inst.Len(); got != want {
				t.Fatalf("population = %d after soak, want %d", got, want)
			}
		})
	}
}

// TestFigureFactoriesUnderStress runs the burst scenario against the exact
// factories the figures use, catching configuration-specific issues.
func TestFigureFactoriesUnderStress(t *testing.T) {
	for _, alg := range relax.Figure2Algorithms() {
		f := harness.Figure2Factory(alg, 4)
		t.Run(fmt.Sprintf("fig2-%s", f.Name), func(t *testing.T) {
			checkConserved(t, f, 4, func(w harness.Worker, id int, report func(uint64, []uint64)) {
				base := uint64(id+1) << 40
				var pushed uint64
				var popped []uint64
				for cycle := 0; cycle < 10; cycle++ {
					for i := 0; i < 40; i++ {
						pushed++
						w.Push(base | pushed)
					}
					for i := 0; i < 40; i++ {
						if v, ok := w.Pop(); ok {
							popped = append(popped, v)
						}
					}
				}
				report(pushed, popped)
			})
		})
	}
}
