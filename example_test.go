package stack2d_test

import (
	"fmt"

	"stack2d"
)

// The basic lifecycle: build, push, pop through a handle.
func ExampleNew() {
	s := stack2d.New[string](stack2d.WithExpectedThreads(1))
	h := s.NewHandle()
	h.Push("a")
	h.Push("b")
	v, ok := h.Pop()
	fmt.Println(v, ok)
	// Output: b true
}

// Choosing the structure by relaxation budget: the realised bound K()
// never exceeds the requested k.
func ExampleWithRelaxation() {
	s := stack2d.New[int](
		stack2d.WithRelaxation(100),
		stack2d.WithExpectedThreads(4),
	)
	fmt.Println(s.K() <= 100)
	// Output: true
}

// A width-1 stack is strict LIFO (k = 0), useful when exactness matters
// but the same API is wanted.
func ExampleWithRelaxation_strict() {
	s := stack2d.New[int](stack2d.WithRelaxation(0))
	h := s.NewHandle()
	h.Push(1)
	h.Push(2)
	h.Push(3)
	a, _ := h.Pop()
	b, _ := h.Pop()
	c, _ := h.Pop()
	fmt.Println(a, b, c, s.K())
	// Output: 3 2 1 0
}

// Batched operations amortise search and CAS; order within the batch
// matches a loop of singleton calls.
func ExampleHandle_PushBatch() {
	s := stack2d.New[int](stack2d.WithRelaxation(0)) // strict, so order is visible
	h := s.NewHandle()
	h.PushBatch([]int{1, 2, 3})
	fmt.Println(h.PopBatch(3))
	// Output: [3 2 1]
}

// The strict Treiber stack for comparison or exact use-cases.
func ExampleNewStrict() {
	s := stack2d.NewStrict[int]()
	s.Push(10)
	s.Push(20)
	v, _ := s.Pop()
	fmt.Println(v)
	// Output: 20
}

// The relaxed FIFO queue built with the same window technique.
func ExampleNewQueue() {
	q := stack2d.NewQueue[string](stack2d.WithQueueExpectedThreads(1))
	h := q.NewHandle()
	h.Enqueue("first")
	h.Enqueue("second")
	v, ok := h.Dequeue()
	fmt.Println(v, ok, q.Len())
	// Output: first true 1
}

// The strict Michael–Scott queue baseline.
func ExampleNewStrictQueue() {
	q := stack2d.NewStrictQueue[int]()
	q.Enqueue(1)
	q.Enqueue(2)
	a, _ := q.Dequeue()
	b, _ := q.Dequeue()
	fmt.Println(a, b)
	// Output: 1 2
}
