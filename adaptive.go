package stack2d

import (
	"stack2d/internal/adapt"
	"stack2d/internal/core"
)

// AdaptivePolicy configures the feedback controller of an Adaptive stack:
// the goal (maximise throughput under a k ceiling, or minimise k above a
// throughput floor), the sampling tick, the contention/search-cost
// thresholds and the geometry bounds. The zero value selects the defaults;
// see the field documentation in internal/adapt.Policy (this is an alias).
type AdaptivePolicy = adapt.Policy

// AdaptiveController is the runtime self-tuning loop attached to an
// Adaptive stack; it exposes the decision time series (History), the
// geometry ladder and manual stepping for simulations.
type AdaptiveController = adapt.Controller

// AdaptiveTick is one row of the controller's time series.
type AdaptiveTick = adapt.TickRecord

// Controller goals, re-exported for policy construction.
const (
	// GoalMaxThroughput maximises throughput while the active geometry's
	// Theorem 1 bound stays at or below AdaptivePolicy.KCeiling.
	GoalMaxThroughput = adapt.MaxThroughput
	// GoalMinRelaxation minimises the relaxation bound while throughput
	// stays above AdaptivePolicy.ThroughputFloor.
	GoalMinRelaxation = adapt.MinRelaxation
	// GoalLatencyTarget drives the structure's own sampled P99 operation
	// latency to at most AdaptivePolicy.LatencyTarget, spending spare
	// latency budget on tighter semantics. The latency signal is sampled
	// on the operation hot paths (1 in 64 operations is timed) and flows
	// through StatsSnapshot like every other counter.
	GoalLatencyTarget = adapt.TargetLatency
	// GoalEnergyPerOp minimises the structure's work per operation —
	// window moves plus probes, the coherence-traffic proxy — while
	// throughput stays above AdaptivePolicy.ThroughputFloor.
	GoalEnergyPerOp = adapt.MinEnergy
)

// DefaultAdaptivePolicy returns the controller defaults: the
// max-throughput goal with an uncapped ladder sized for GOMAXPROCS.
func DefaultAdaptivePolicy() AdaptivePolicy { return adapt.DefaultPolicy() }

// Adaptive is a 2D-Stack whose window geometry is retuned continuously at
// runtime by a feedback controller: under contention it widens (more
// relaxation, more throughput), under light load it narrows (tighter
// semantics, cheaper searches). It embeds Stack, so the whole Stack and
// Handle API — including the pooled Push/Pop convenience methods and
// Interface[T] — applies unchanged; K() and Config() report the geometry
// active at the call.
//
// Create with NewAdaptive; call Close when done to stop the controller
// goroutine (operations remain usable after Close, the geometry just stops
// adapting).
type Adaptive[T any] struct {
	Stack[T]
	ctrl *adapt.Controller
}

// NewAdaptive builds a self-tuning 2D-Stack and starts its controller.
// Structural options (WithWidth, WithRelaxation, ...) set the *initial*
// geometry exactly as for New; WithAdaptive supplies the controller policy
// (defaulted when absent). Invalid combinations panic, as in New; use
// NewAdaptiveWithConfig to handle errors.
func NewAdaptive[T any](opts ...Option) *Adaptive[T] {
	b := applyOptions(opts)
	pol := DefaultAdaptivePolicy()
	if b.policy != nil {
		pol = *b.policy
	}
	a, err := NewAdaptiveWithConfig[T](resolveConfig(b), pol)
	if err != nil {
		panic(err)
	}
	// Observer before placement, as in New: the construction placement
	// event must reach it.
	if b.observer != nil {
		a.inner.SetObserver(b.observer)
	}
	if b.placePolicy != nil {
		a.inner.SetPlacement(b.placePolicy, b.placeSockets)
	}
	return a
}

// NewAdaptiveWithConfig builds a self-tuning stack from an explicit initial
// configuration and controller policy, returning an error on invalid
// parameters. The controller is started before returning.
func NewAdaptiveWithConfig[T any](cfg Config, pol AdaptivePolicy) (*Adaptive[T], error) {
	inner, err := core.New[T](cfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := adapt.New(inner, pol)
	if err != nil {
		return nil, err
	}
	a := &Adaptive[T]{ctrl: ctrl}
	a.inner = inner
	a.pool.New = func() any { return inner.NewHandle() }
	ctrl.Start()
	return a, nil
}

// Controller returns the stack's feedback controller, for reading the
// decision history or pausing/resuming adaptation (Stop/Start).
func (a *Adaptive[T]) Controller() *AdaptiveController { return a.ctrl }

// Close stops the controller goroutine. The stack itself stays fully
// usable; it simply keeps its last geometry. Idempotent.
func (a *Adaptive[T]) Close() { a.ctrl.Stop() }

// Reconfigure swaps the window geometry by hand. Note that a running
// controller may immediately retune it; Stop the controller (or Close) for
// manual control.
func (a *Adaptive[T]) Reconfigure(cfg Config) error { return a.inner.Reconfigure(cfg) }

// StatsSnapshot aggregates the operation counters of every handle of this
// stack — the controller's input signal, exposed for observability.
func (a *Adaptive[T]) StatsSnapshot() core.OpStats { return a.inner.StatsSnapshot() }

var _ Interface[int] = (*Adaptive[int])(nil)
