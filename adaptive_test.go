package stack2d_test

import (
	"sync"
	"testing"
	"time"

	"stack2d"
)

func TestAdaptiveBasicOps(t *testing.T) {
	s := stack2d.NewAdaptive[int](stack2d.WithWidth(2), stack2d.WithDepth(8))
	defer s.Close()

	h := s.NewHandle()
	for i := 0; i < 100; i++ {
		h.Push(i)
	}
	if got := s.Len(); got != 100 {
		t.Fatalf("Len = %d, want 100", got)
	}
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		v, ok := h.Pop()
		if !ok {
			t.Fatalf("pop %d reported empty", i)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("pop on empty adaptive stack returned a value")
	}
}

func TestAdaptiveHonoursPolicyCeiling(t *testing.T) {
	pol := stack2d.AdaptivePolicy{
		Goal:     stack2d.GoalMaxThroughput,
		KCeiling: 2048,
		Tick:     time.Millisecond,
		MinWidth: 1, MaxWidth: 32,
		MinDepth: 8, MaxDepth: 128,
	}
	s := stack2d.NewAdaptive[uint64](stack2d.WithWidth(1), stack2d.WithDepth(8), stack2d.WithAdaptive(pol))
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h := s.NewHandle()
			label := uint64(id+1) << 40
			for i := 0; i < 20000; i++ {
				label++
				h.Push(label)
				h.Pop()
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	if got := s.K(); got > pol.KCeiling {
		t.Fatalf("active K %d exceeds policy ceiling %d", got, pol.KCeiling)
	}
	for _, rec := range s.Controller().History() {
		if rec.K > pol.KCeiling {
			t.Fatalf("tick %d ran with K %d above ceiling %d", rec.Tick, rec.K, pol.KCeiling)
		}
	}
	// The stack must remain consistent and fully usable after Close.
	h := s.NewHandle()
	h.Push(7)
	if v, ok := h.Pop(); !ok || v != 7 {
		t.Fatalf("post-Close op returned (%d, %v)", v, ok)
	}
}

func TestAdaptiveWithConfigErrors(t *testing.T) {
	if _, err := stack2d.NewAdaptiveWithConfig[int](stack2d.Config{}, stack2d.DefaultAdaptivePolicy()); err == nil {
		t.Fatal("invalid config was accepted")
	}
	bad := stack2d.AdaptivePolicy{Goal: stack2d.GoalMinRelaxation} // no floor
	if _, err := stack2d.NewAdaptiveWithConfig[int](stack2d.Config{Width: 2, Depth: 8, Shift: 8}, bad); err == nil {
		t.Fatal("invalid policy was accepted")
	}
}

func TestAdaptiveImplementsInterface(t *testing.T) {
	var s stack2d.Interface[int] = stack2d.NewAdaptive[int]()
	s.Push(1)
	if v, ok := s.Pop(); !ok || v != 1 {
		t.Fatalf("Interface ops via Adaptive: got (%d, %v)", v, ok)
	}
}
