package stack2d

import (
	"sync"

	"stack2d/internal/core"
	"stack2d/internal/treiber"
)

// Interface is the minimal concurrent-stack contract shared by every
// implementation in this module. Pop's second result is false when the
// stack was observed empty (for relaxed implementations: empty within the
// permitted k slack).
type Interface[T any] interface {
	Push(v T)
	Pop() (v T, ok bool)
}

// Stack is a lock-free 2D-Stack. Create one with New; it must not be
// copied. All methods are safe for concurrent use.
type Stack[T any] struct {
	inner *core.Stack[T]
	pool  sync.Pool // of *core.Handle[T], for the handle-free convenience API
	// opBuffer is WithOpBuffer's threshold; NewHandle arms it on every
	// handle. Pooled handles (Stack.Push/Pop) always stay unbuffered.
	opBuffer int
}

// New builds a 2D-Stack configured by the supplied options; without options
// it is tuned for runtime.GOMAXPROCS(0) threads (width 4P, depth 64 — the
// paper's high-throughput configuration). Invalid combinations panic, since
// they are programming errors; use NewWithConfig to handle errors.
func New[T any](opts ...Option) *Stack[T] {
	b := applyOptions(opts)
	s, err := NewWithConfig[T](resolveConfig(b))
	if err != nil {
		panic(err)
	}
	if b.observer != nil {
		s.inner.SetObserver(b.observer)
	}
	if b.placePolicy != nil {
		s.inner.SetPlacement(b.placePolicy, b.placeSockets)
	}
	s.opBuffer = b.opBuffer
	return s
}

// Config re-exports the 2D-Stack tuning parameters; see the package
// documentation for their meaning and the fields' constraints.
type Config = core.Config

// NewWithConfig builds a 2D-Stack from an explicit configuration,
// returning an error on invalid parameters.
func NewWithConfig[T any](cfg Config) (*Stack[T], error) {
	inner, err := core.New[T](cfg)
	if err != nil {
		return nil, err
	}
	s := &Stack[T]{inner: inner}
	s.pool.New = func() any { return inner.NewHandle() }
	return s, nil
}

// Handle is a per-goroutine operation context. A handle is not safe for
// concurrent use; the Stack is, across handles. Using one handle per
// goroutine is the fast path — it preserves the locality dimension of the
// design. On a stack built WithOpBuffer the handle additionally batches
// its operations for combined publication (see WithOpBuffer and Flush).
type Handle[T any] struct {
	h        *core.Handle[T]
	buffered bool
}

// NewHandle returns a fresh handle anchored at a random sub-stack; on a
// stack built WithOpBuffer the handle comes armed with its op buffer.
func (s *Stack[T]) NewHandle() *Handle[T] {
	h := &Handle[T]{h: s.inner.NewHandle()}
	if s.opBuffer > 0 {
		h.h.SetOpBuffer(s.opBuffer)
		h.buffered = true
	}
	return h
}

// Push adds v to the stack (through the op buffer when armed).
func (h *Handle[T]) Push(v T) {
	if h.buffered {
		h.h.BufferedPush(v)
		return
	}
	h.h.Push(v)
}

// Pop removes and returns a value within the relaxation window (through
// the op buffer when armed); ok is false when the stack is empty.
func (h *Handle[T]) Pop() (v T, ok bool) {
	if h.buffered {
		return h.h.BufferedPop()
	}
	return h.h.Pop()
}

// Flush publishes the handle's buffered pushes immediately; a no-op on an
// unbuffered handle. Call before quiescing, before Stack.Drain, or before
// abandoning the handle.
func (h *Handle[T]) Flush() {
	if h.buffered {
		h.h.FlushOps()
	}
}

// TryPop attempts a single search pass without moving the window; ok=false
// means "nothing found in the current window", which is cheaper but weaker
// than Pop's empty guarantee.
func (h *Handle[T]) TryPop() (v T, ok bool) { return h.h.TryPop() }

// PushBatch pushes all values with as few descriptor CASes as the window
// allows (vs[len-1] ends up topmost, as a loop of Push calls would leave
// it). Batching amortises sub-stack search and coherence traffic without
// weakening the Theorem 1 bound. On a buffered handle any pending buffered
// pushes are published first, preserving program order.
func (h *Handle[T]) PushBatch(vs []T) {
	if h.buffered {
		h.h.FlushOps()
	}
	h.h.PushBatch(vs)
}

// PopBatch removes up to max values, topmost-first; it returns fewer when
// the stack runs out of items. On a buffered handle the values flow
// through the op buffer, so its residents are served first.
func (h *Handle[T]) PopBatch(max int) []T {
	if !h.buffered {
		return h.h.PopBatch(max)
	}
	out := make([]T, 0, max)
	for len(out) < max {
		v, ok := h.h.BufferedPop()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

var _ Interface[int] = (*Handle[int])(nil)

// Push adds v using a pooled handle. Prefer per-goroutine handles
// (NewHandle) on hot paths: the pool round-trip costs a few tens of
// nanoseconds and shuffles locality anchors between goroutines.
func (s *Stack[T]) Push(v T) {
	h := s.pool.Get().(*core.Handle[T])
	h.Push(v)
	s.pool.Put(h)
}

// Pop removes a value using a pooled handle; see Push for the trade-off.
func (s *Stack[T]) Pop() (v T, ok bool) {
	h := s.pool.Get().(*core.Handle[T])
	v, ok = h.Pop()
	s.pool.Put(h)
	return v, ok
}

var _ Interface[int] = (*Stack[int])(nil)

// SetObserver installs (or, with nil, removes) the stack's structural
// observer at runtime; see WithObserver for the construction-time form and
// StructObserver for the contract.
func (s *Stack[T]) SetObserver(o StructObserver) { s.inner.SetObserver(o) }

// Len returns the total number of stored items; exact when quiescent,
// approximate under concurrency.
func (s *Stack[T]) Len() int { return s.inner.Len() }

// Empty reports whether every sub-stack was observed empty.
func (s *Stack[T]) Empty() bool { return s.inner.Empty() }

// K returns the stack's k-out-of-order relaxation bound, Theorem 1's
// k = (2·depth + shift)·(width − 1) with the constant corrected (the
// paper's transcription swaps depth and shift, which sequential
// counterexamples refute for shift < depth; the two coincide at
// shift = depth, the setting of every configuration this package
// derives). The bound is exact for every legal shift — certified by
// exhaustive small-geometry exploration (internal/seqspec) and
// property-tested beyond — and concurrent executions add at most one
// position of measurement slack per in-flight operation. See DESIGN.md §2.
func (s *Stack[T]) K() int64 { return s.inner.Config().K() }

// Config returns the configuration the stack was built with.
func (s *Stack[T]) Config() Config { return s.inner.Config() }

// Drain removes and returns all items; intended for teardown, not for use
// concurrent with other operations. Buffered handles (WithOpBuffer) must
// Flush first — Drain only sees published items.
func (s *Stack[T]) Drain() []T { return s.inner.Drain() }

// Strict is a strict (k = 0) lock-free LIFO stack — the classic Treiber
// stack — provided for callers that need exact semantics or a baseline to
// compare relaxation against. The zero value is ready to use.
type Strict[T any] struct {
	inner treiber.Stack[T]
}

// NewStrict returns an empty strict stack.
func NewStrict[T any]() *Strict[T] { return &Strict[T]{} }

// Push adds v to the top of the stack.
func (s *Strict[T]) Push(v T) { s.inner.Push(v) }

// Pop removes and returns the exact top value; ok is false on empty.
func (s *Strict[T]) Pop() (v T, ok bool) { return s.inner.Pop() }

// Len returns the approximate number of items.
func (s *Strict[T]) Len() int { return s.inner.Len() }

var _ Interface[int] = (*Strict[int])(nil)
