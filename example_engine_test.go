package stack2d_test

import (
	"fmt"
	"time"

	"stack2d"
)

// A hot-swappable stack: the 2D structure, an elimination stack and a
// strict Treiber stack behind one switch. Here the swap is driven by
// hand; items survive the exchange and the swap history records why it
// happened.
func ExampleNewEngine() {
	e := stack2d.NewEngine[int](stack2d.WithExpectedThreads(1))
	defer e.Close()
	h := e.NewHandle()
	h.Push(1)
	h.Push(2)

	if err := e.SwapTo("treiber", "manual"); err != nil {
		panic(err)
	}
	v, ok := h.Pop() // the former top still tops after the migration
	fmt.Println(e.ActiveBackend(), v, ok, e.Swaps()[0].Migrated)
	// Output: treiber 2 true 2
}

// WithBackendSelection starts the automatic selector: it enforces the
// semantics budget deterministically (a collapsed budget evicts the
// relaxed backend at the next tick) and exchanges backends on
// contention-storm signals. Step drives a decision by hand; the
// background loop does the same on a timer.
func ExampleWithBackendSelection() {
	// The hour-long tick keeps the background loop quiet, so the manual
	// Step below is the only decision the example races against: none.
	e := stack2d.NewEngine[int](
		stack2d.WithExpectedThreads(1),
		stack2d.WithBackendSelection(stack2d.SelectorPolicy{Tick: time.Hour}),
	)
	defer e.Close()
	h := e.NewHandle()
	h.Push(7)

	sel := e.Selector()
	sel.SetKBudget(0) // tolerance collapse: only a strict backend may serve
	rec := sel.Step(0)
	v, ok := h.Pop()
	fmt.Println(rec.Action, rec.Reason, v, ok)
	// Output: swap k-budget-zero 7 true
}
