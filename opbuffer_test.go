package stack2d

import "testing"

// TestWithOpBuffer covers the public buffered surface: handles from a
// WithOpBuffer stack batch and publish combined, Flush exposes the
// residents, and the pooled convenience API stays unbuffered.
func TestWithOpBuffer(t *testing.T) {
	s := New[int](WithExpectedThreads(2), WithOpBuffer(4))
	h := s.NewHandle()
	for i := 1; i <= 3; i++ {
		h.Push(i)
	}
	if got := s.Len(); got != 3 {
		t.Fatalf("Len = %d with 3 buffered pushes, want 3", got)
	}
	if v, ok := h.Pop(); !ok || v != 3 {
		t.Fatalf("Pop = (%d,%t), want (3,true) — newest buffered push", v, ok)
	}
	h.Flush()
	if got := len(s.Drain()); got != 2 {
		t.Fatalf("Drain returned %d values after Flush, want 2", got)
	}

	// The pooled convenience API must not buffer: its pushes are visible
	// to a drain immediately, no Flush required.
	s.Push(7)
	if got := s.Drain(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("pooled Push not immediately published: drain = %v", got)
	}
}

// TestWithQueueOpBuffer is the queue twin: combined publication, the
// pop-miss flush keeping FIFO order, and the batch wrappers.
func TestWithQueueOpBuffer(t *testing.T) {
	q := NewQueue[int](WithQueueExpectedThreads(2), WithQueueOpBuffer(4))
	h := q.NewHandle()
	for i := 1; i <= 3; i++ {
		h.Enqueue(i)
	}
	if got := q.Len(); got != 3 {
		t.Fatalf("Len = %d with 3 buffered enqueues, want 3", got)
	}
	// Structure is empty, so this dequeue flushes the pending batch and
	// must serve the OLDEST value — FIFO, not the stack's elision.
	if v, ok := h.Dequeue(); !ok || v != 1 {
		t.Fatalf("Dequeue = (%d,%t), want (1,true) — oldest buffered enqueue", v, ok)
	}
	h.Flush()

	h.EnqueueBatch([]int{10, 11, 12})
	got := h.DequeueBatch(16)
	want := []int{2, 3, 10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("DequeueBatch returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DequeueBatch[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
