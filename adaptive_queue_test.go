package stack2d_test

import (
	"sync"
	"testing"
	"time"

	"stack2d"
)

func TestAdaptiveQueueBasic(t *testing.T) {
	q := stack2d.NewAdaptiveQueue[uint64](
		stack2d.WithQueueWidth(2),
		stack2d.WithQueueDepth(8),
		stack2d.WithQueueAdaptive(stack2d.AdaptivePolicy{
			Goal:     stack2d.GoalMaxThroughput,
			KCeiling: 4096,
			Tick:     2 * time.Millisecond,
		}),
	)
	defer q.Close()

	const workers, perW = 4, 4000
	var wg sync.WaitGroup
	got := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < perW; i++ {
				h.Enqueue(uint64(w*perW + i))
				if i%2 == 1 {
					if v, ok := h.Dequeue(); ok {
						got[w] = append(got[w], v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	q.Close()

	// Conservation across whatever retuning the controller performed.
	seen := make(map[uint64]int)
	for _, vs := range got {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range q.Drain() {
		seen[v]++
	}
	if len(seen) != workers*perW {
		t.Fatalf("recovered %d distinct values, want %d", len(seen), workers*perW)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d recovered %d times", v, n)
		}
	}

	// Every controller decision must have respected the ceiling, and the
	// sampled signals must reflect the handles' work.
	hist := q.Controller().History()
	for _, rec := range hist {
		if rec.K > 4096 {
			t.Fatalf("tick %d ran with k=%d above the ceiling", rec.Tick, rec.K)
		}
	}
	if snap := q.StatsSnapshot(); snap.Ops() == 0 {
		t.Fatal("StatsSnapshot reported zero operations")
	}
}

func TestAdaptiveQueueManualReconfigure(t *testing.T) {
	q := stack2d.NewAdaptiveQueue[int](stack2d.WithQueueWidth(2), stack2d.WithQueueDepth(8))
	q.Close() // stop the controller so the manual geometry sticks
	want := stack2d.QueueConfig{Width: 4, Depth: 32, Shift: 32, RandomHops: 1}
	if err := q.Reconfigure(want); err != nil {
		t.Fatal(err)
	}
	if got := q.Config(); got != want {
		t.Fatalf("Config = %+v, want %+v", got, want)
	}
	h := q.NewHandle()
	h.Enqueue(7)
	if v, ok := h.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue = (%d,%v) after manual reconfigure", v, ok)
	}
}

func TestNewAdaptiveQueueWithConfigRejectsInvalid(t *testing.T) {
	if _, err := stack2d.NewAdaptiveQueueWithConfig[int](stack2d.QueueConfig{}, stack2d.DefaultAdaptivePolicy()); err == nil {
		t.Fatal("zero config accepted")
	}
	bad := stack2d.DefaultAdaptivePolicy()
	bad.MinWidth = 8
	bad.MaxWidth = 2
	if _, err := stack2d.NewAdaptiveQueueWithConfig[int](stack2d.QueueConfig{Width: 2, Depth: 8, Shift: 8}, bad); err == nil {
		t.Fatal("incoherent policy accepted")
	}
}
