// Benchmarks regenerating every figure of the paper's evaluation section
// (the brief announcement has two figures and no tables) plus the ablation
// studies listed in EXPERIMENTS.md.
//
// Figure 1 — throughput vs relaxation bound k (k-bounded algorithms) at a
// fixed thread count:   go test -bench=Figure1 -benchmem
// Figure 2 — throughput vs concurrency (all algorithms):
//
//	go test -bench=Figure2 -benchmem
//
// Ablations A1–A5:      go test -bench=Ablation -benchmem
//
// Each benchmark prefills the stack with the paper's 32,768 items outside
// the timed region and then drives a 50/50 push/pop mix with no think time.
// The quality (error distance) companion numbers come from the sweep
// harness: cmd/stackbench prints both series; see EXPERIMENTS.md.
package stack2d_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"stack2d/internal/core"
	"stack2d/internal/elimination"
	"stack2d/internal/eltree"
	"stack2d/internal/harness"
	"stack2d/internal/relax"
	"stack2d/internal/twodqueue"
	"stack2d/internal/xrand"
	"stack2d/internal/yield"
)

const benchPrefill = 32768

// driveFactory runs the canonical paper workload (uniform 50/50 push/pop)
// against one factory under b.RunParallel with `par` goroutines per
// GOMAXPROCS processor.
func driveFactory(b *testing.B, f harness.Factory, par int, pushRatio float64) {
	b.Helper()
	inst := f.New()
	pre := inst.NewWorker()
	for i := 0; i < benchPrefill; i++ {
		pre.Push(uint64(i) + 1)
	}
	var workerID atomic.Uint64
	b.SetParallelism(par)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := inst.NewWorker()
		id := workerID.Add(1)
		rng := xrand.New(0x2d57ac + id*0x9e3779b97f4a7c15)
		label := id << 40
		for pb.Next() {
			if rng.Float64() < pushRatio {
				label++
				w.Push(label)
			} else {
				w.Pop()
			}
		}
	})
}

// BenchmarkFigure1 regenerates the relaxation sweep: the three k-bounded
// algorithms at increasing k, at the paper's two highlighted thread counts
// (P=8 intra-socket, P=16 inter-socket).
func BenchmarkFigure1(b *testing.B) {
	for _, p := range []int{8, 16} {
		for _, k := range []int64{8, 32, 128, 512, 2048, 8192} {
			for _, alg := range relax.Figure1Algorithms() {
				f := harness.Figure1Factory(alg, k, p)
				b.Run(fmt.Sprintf("P=%d/k=%d/%s", p, k, f.Name), func(b *testing.B) {
					driveFactory(b, f, p, 0.5)
				})
			}
		}
	}
}

// BenchmarkFigure2 regenerates the concurrency sweep: all seven algorithms
// as the number of threads grows (the paper sweeps 1..16).
func BenchmarkFigure2(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		for _, alg := range relax.Figure2Algorithms() {
			f := harness.Figure2Factory(alg, p)
			b.Run(fmt.Sprintf("P=%d/%s", p, f.Name), func(b *testing.B) {
				driveFactory(b, f, p, 0.5)
			})
		}
	}
}

// BenchmarkAblationHop (A1) isolates the paper's hybrid hop policy: random
// probes then round-robin versus the pure policies, at the Figure 2
// configuration.
func BenchmarkAblationHop(b *testing.B) {
	const p = 8
	base := core.DefaultConfig(p)
	cases := []struct {
		name string
		hops int
	}{
		{"round-robin-only", 0},
		{"hybrid-paper", 2},
		{"random-heavy", base.Width}, // effectively random-only search
	}
	for _, c := range cases {
		cfg := base
		cfg.RandomHops = c.hops
		f := harness.NewTwoDFactory(cfg)
		b.Run(c.name, func(b *testing.B) {
			driveFactory(b, f, p, 0.5)
		})
	}
}

// BenchmarkAblationDepth (A2) sweeps the vertical dimension at fixed width,
// trading locality against relaxation.
func BenchmarkAblationDepth(b *testing.B) {
	const p = 8
	for _, depth := range []int64{1, 4, 16, 64, 256} {
		cfg := core.Config{Width: 4 * p, Depth: depth, Shift: depth, RandomHops: 2}
		f := harness.NewTwoDFactory(cfg)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			driveFactory(b, f, p, 0.5)
		})
	}
}

// BenchmarkAblationShift (A3) sweeps the window step at fixed width/depth:
// smaller shifts move the window more often but keep relaxation tighter.
func BenchmarkAblationShift(b *testing.B) {
	const p = 8
	const depth = 64
	for _, shift := range []int64{1, depth / 4, depth / 2, depth} {
		cfg := core.Config{Width: 4 * p, Depth: depth, Shift: shift, RandomHops: 2}
		f := harness.NewTwoDFactory(cfg)
		b.Run(fmt.Sprintf("shift=%d", shift), func(b *testing.B) {
			driveFactory(b, f, p, 0.5)
		})
	}
}

// BenchmarkAblationWidth (A4) reproduces the "width = 4P is the optimum"
// claim by sweeping the width multiplier.
func BenchmarkAblationWidth(b *testing.B) {
	const p = 8
	for _, mult := range []int{1, 2, 4, 8} {
		cfg := core.Config{Width: mult * p, Depth: 64, Shift: 64, RandomHops: 2}
		f := harness.NewTwoDFactory(cfg)
		b.Run(fmt.Sprintf("width=%dP", mult), func(b *testing.B) {
			driveFactory(b, f, p, 0.5)
		})
	}
}

// BenchmarkAblationAsymmetric (A5) exercises asymmetric workloads, where
// elimination's pairing opportunity collapses while the 2D-Stack's window
// keeps absorbing the imbalance.
func BenchmarkAblationAsymmetric(b *testing.B) {
	const p = 8
	ratios := []struct {
		name string
		push float64
	}{
		{"push80", 0.8},
		{"sym50", 0.5},
		{"pop80", 0.2},
	}
	algs := []struct {
		name string
		f    harness.Factory
	}{
		{"2D-stack", harness.NewTwoDFactory(core.DefaultConfig(p))},
		{"elimination", harness.NewEliminationFactory(elimination.DefaultConfig(p))},
		{"treiber", harness.NewTreiberFactory()},
	}
	for _, r := range ratios {
		for _, a := range algs {
			b.Run(fmt.Sprintf("%s/%s", r.name, a.name), func(b *testing.B) {
				driveFactory(b, a.f, p, r.push)
			})
		}
	}
}

// BenchmarkPublicAPI measures the overhead of the exported convenience
// layer (pooled handles) against raw handles.
func BenchmarkPublicAPI(b *testing.B) {
	b.Run("handle", func(b *testing.B) {
		f := harness.NewTwoDFactory(core.DefaultConfig(8))
		driveFactory(b, f, 8, 0.5)
	})
}

// BenchmarkExtensionQueue measures the 2D-Queue generalisation (the
// paper's announced future work) against its strict Michael–Scott
// baseline, mirroring the Figure 2 methodology.
func BenchmarkExtensionQueue(b *testing.B) {
	for _, p := range []int{1, 4, 8, 16} {
		for _, f := range []harness.Factory{
			harness.NewMSQueueFactory(),
			harness.NewTwoDQueueFactory(twodqueue.DefaultConfig(p)),
		} {
			b.Run(fmt.Sprintf("P=%d/%s", p, f.Name), func(b *testing.B) {
				driveFactory(b, f, p, 0.5)
			})
		}
	}
}

// BenchmarkExtensionThinkTime dilutes contention with computational load
// between operations (the paper zeroes this to maximise contention; the
// full version sweeps it). As think time grows, the gap between designs
// narrows — the crossover the sweep exposes.
func BenchmarkExtensionThinkTime(b *testing.B) {
	const p = 8
	for _, spin := range []int{0, 64, 512} {
		for _, f := range []harness.Factory{
			harness.NewTreiberFactory(),
			harness.NewTwoDFactory(core.DefaultConfig(p)),
		} {
			spin := spin
			b.Run(fmt.Sprintf("think=%d/%s", spin, f.Name), func(b *testing.B) {
				driveThinking(b, f, p, spin)
			})
		}
	}
}

// driveThinking is driveFactory with a spin workload between operations.
func driveThinking(b *testing.B, f harness.Factory, par, spin int) {
	b.Helper()
	inst := f.New()
	pre := inst.NewWorker()
	for i := 0; i < benchPrefill; i++ {
		pre.Push(uint64(i) + 1)
	}
	var workerID atomic.Uint64
	b.SetParallelism(par)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := inst.NewWorker()
		id := workerID.Add(1)
		rng := xrand.New(0x7e11 + id*0x9e3779b97f4a7c15)
		label := id << 40
		var sink uint64
		for pb.Next() {
			if rng.Bool() {
				label++
				w.Push(label)
			} else {
				w.Pop()
			}
			for i := 0; i < spin; i++ {
				sink = sink*6364136223846793005 + 1442695040888963407
			}
		}
		_ = sink
	})
}

// BenchmarkRelatedWork places the 2D-Stack in the wider contention-
// management design space the paper's Section 2 surveys: software
// combining (flat combining) and elimination-diffraction trees, alongside
// the strict and relaxed designs of the evaluation proper.
func BenchmarkRelatedWork(b *testing.B) {
	for _, p := range []int{1, 8, 16} {
		factories := []harness.Factory{
			harness.NewTwoDFactory(core.DefaultConfig(p)),
			harness.NewTreiberFactory(),
			harness.NewEliminationFactory(elimination.DefaultConfig(p)),
			harness.NewFlatCombiningFactory(),
			harness.NewElimTreeFactory(eltree.DefaultConfig(p)),
		}
		for _, f := range factories {
			b.Run(fmt.Sprintf("P=%d/%s", p, f.Name), func(b *testing.B) {
				driveFactory(b, f, p, 0.5)
			})
		}
	}
}

// BenchmarkBatchOps measures the batched API against singleton operations
// at matched item volume (batch size 16).
func BenchmarkBatchOps(b *testing.B) {
	const p = 8
	const batch = 16
	b.Run("singleton", func(b *testing.B) {
		f := harness.NewTwoDFactory(core.DefaultConfig(p))
		driveFactory(b, f, p, 0.5)
	})
	b.Run("batch16", func(b *testing.B) {
		inst := core.MustNew[uint64](core.DefaultConfig(p))
		pre := inst.NewHandle()
		for i := 0; i < benchPrefill; i++ {
			pre.Push(uint64(i) + 1)
		}
		var workerID atomic.Uint64
		b.SetParallelism(p)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			h := inst.NewHandle()
			id := workerID.Add(1)
			rng := xrand.New(0xba7c4 + id*0x9e3779b97f4a7c15)
			label := id << 40
			buf := make([]uint64, batch)
			for pb.Next() {
				// One pb.Next() tick = one batch of 16 item-ops, so ns/op
				// numbers are per batch; divide by 16 to compare with the
				// singleton series.
				if rng.Bool() {
					for i := range buf {
						label++
						buf[i] = label
					}
					h.PushBatch(buf)
				} else {
					h.PopBatch(batch)
				}
			}
		})
	})
}

// BenchmarkDirectorGate pins the director hooks' disabled-state overhead
// (DESIGN.md §10). "nil" is the shipped configuration; "armed-noop"
// installs an empty hook so every gate call site executes its call. The two
// series must stay within noise of each other and of the pre-hook seed, and
// both must stay allocation-free: the gate is a package-level function
// pointer checked off the fast path, so arming it may add at most the cost
// of an indirect call on paths that are already slow (failed CAS, window
// move). Two workloads make the sites actually execute: "window" churns the
// window with a depth-1 geometry (every other op crosses a window-move
// gate) and "contended" runs the canonical parallel storm (CAS-failure
// gates).
func BenchmarkDirectorGate(b *testing.B) {
	window := func(b *testing.B) {
		s := core.MustNew[uint64](core.Config{Width: 1, Depth: 1, Shift: 1, RandomHops: 0})
		h := s.NewHandle()
		b.ReportAllocs()
		b.ResetTimer()
		var label uint64
		for i := 0; i < b.N; i++ {
			label++
			h.Push(label)
			h.Pop()
		}
	}
	contended := func(b *testing.B) {
		b.ReportAllocs()
		driveFactory(b, harness.NewTwoDFactory(core.DefaultConfig(8)), 8, 0.5)
	}
	for _, w := range []struct {
		name string
		run  func(*testing.B)
	}{{"window", window}, {"contended", contended}} {
		b.Run(w.name+"/gate-nil", w.run)
		b.Run(w.name+"/gate-armed-noop", func(b *testing.B) {
			core.Gate = func(yield.Point) {}
			defer func() { core.Gate = nil }()
			w.run(b)
		})
	}
}
