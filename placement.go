package stack2d

import "stack2d/internal/core"

// NUMA-aware width placement.
//
// The paper's evaluation collapses past P = 8 because that is where its
// testbed's threads spill onto the second socket and every descriptor CAS
// can become a cross-socket cache-line transfer. Placement exploits what
// that cliff implies: each sub-structure slot is homed on a socket, width
// growth driven by the adaptive controller homes new slots on the socket
// whose contention asked for them, width shrink drops remote slots first,
// and a handle that knows its socket (Handle.Pin / QueueHandle.Pin, or
// the creation-order heuristic) visits same-socket slots before remote
// ones — so the window's hot slots stay intra-socket. Placement never
// changes the window validity rules, only slot homes and visit order, so
// the structure's k-out-of-order bound is untouched (DESIGN.md §7 gives
// the argument; EXPERIMENTS.md the measured local-vs-round-robin win on
// the simulated 2-socket machine).
//
// Enable it with WithPlacement / WithQueuePlacement at construction, or
// SetPlacement on a live structure:
//
//	s := stack2d.New[int](
//		stack2d.WithWidth(8),
//		stack2d.WithPlacement(stack2d.LocalFirst(), 2), // 2-socket machine
//	)
//	h := s.NewHandle()
//	h.Pin(1) // this goroutine runs on socket 1
//
// On a single-socket machine (or with sockets <= 1) placement is inert.

// PlacementPolicy decides which socket newly created sub-structure slots
// are homed on when the geometry widens, and whether operations should
// probe same-socket slots first; see the field documentation in
// internal/core.PlacementPolicy (this is an alias). Use LocalFirst or
// RoundRobin unless you need a custom layout.
type PlacementPolicy = core.PlacementPolicy

// LocalFirst returns the default placement policy: new slots are homed on
// the socket whose contention requested the widening (up to its fair
// share, then spilling to the least-loaded socket), shrinks drop remote
// slots first, and handles probe same-socket slots before remote ones.
func LocalFirst() PlacementPolicy { return core.LocalFirst() }

// RoundRobin returns the A/B baseline policy: slot homes interleave
// sockets by index and probing stays socket-blind — exactly the
// behaviour of a structure without placement.
func RoundRobin() PlacementPolicy { return core.RoundRobin() }

// WithPlacement enables socket-aware placement on the stack being built:
// policy homes the slots (LocalFirst or RoundRobin), sockets is the
// machine's socket count. Applied after construction, so it also re-homes
// the initial slots; combine with Handle.Pin for exact handle→socket
// hints.
func WithPlacement(policy PlacementPolicy, sockets int) Option {
	return func(b *builder) {
		b.placePolicy = policy
		b.placeSockets = sockets
	}
}

// WithQueuePlacement is WithPlacement for the 2D-Queue.
func WithQueuePlacement(policy PlacementPolicy, sockets int) QueueOption {
	return func(b *queueBuilder) {
		b.placePolicy = policy
		b.placeSockets = sockets
	}
}

// SetPlacement installs (or replaces) the stack's placement model at
// runtime; see internal/core.Stack.SetPlacement. Safe concurrently with
// operations.
func (s *Stack[T]) SetPlacement(policy PlacementPolicy, sockets int) {
	s.inner.SetPlacement(policy, sockets)
}

// Placement returns a copy of the stack's slot→socket home map (all zeros
// while placement is off).
func (s *Stack[T]) Placement() []int { return s.inner.Placement() }

// Pin declares the socket the owning goroutine runs on; under a
// local-probe placement policy subsequent operations visit slots homed on
// that socket first, and the handle's contention is attributed to it for
// the adaptive controller's widening decisions. Never affects the
// structure's semantics — only probe order.
func (h *Handle[T]) Pin(socket int) { h.h.Pin(socket) }

// SetPlacement installs (or replaces) the queue's placement model at
// runtime; see internal/twodqueue.Queue.SetPlacement. Safe concurrently
// with operations.
func (q *Queue[T]) SetPlacement(policy PlacementPolicy, sockets int) {
	q.inner.SetPlacement(policy, sockets)
}

// Placement returns a copy of the queue's slot→socket home map (all zeros
// while placement is off).
func (q *Queue[T]) Placement() []int { return q.inner.Placement() }

// Pin declares the socket the owning goroutine runs on; see Handle.Pin.
func (h *QueueHandle[T]) Pin(socket int) { h.h.Pin(socket) }
