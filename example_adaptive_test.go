package stack2d_test

import (
	"fmt"
	"time"

	"stack2d"
)

// A self-tuning stack: the controller retunes the window geometry in the
// background while the ordinary Stack/Handle API is used unchanged. Close
// stops the controller; the stack keeps working on its last geometry.
func ExampleNewAdaptive() {
	s := stack2d.NewAdaptive[int](stack2d.WithExpectedThreads(1))
	defer s.Close()
	h := s.NewHandle()
	h.Push(1)
	h.Push(2)
	v, ok := h.Pop()
	fmt.Println(v, ok)
	// Output: 2 true
}

// WithAdaptive supplies the controller policy. Here the goal is the
// smallest relaxation bound that sustains a (trivially low) throughput
// floor; the zero fields take the documented defaults.
func ExampleWithAdaptive() {
	s := stack2d.NewAdaptive[string](
		stack2d.WithWidth(4),
		stack2d.WithAdaptive(stack2d.AdaptivePolicy{
			Goal:            stack2d.GoalMinRelaxation,
			ThroughputFloor: 1,
		}),
	)
	defer s.Close()
	fmt.Println(s.Controller().Policy().Goal)
	// Output: min-relaxation
}

// A latency-targeted stack: the controller steers on the structure's own
// sampled P99 (1 operation in 64 is timed on the hot path) and tightens
// semantics whenever the latency budget allows. The decision time series
// is available from the controller.
func ExampleWithAdaptive_latencyTarget() {
	s := stack2d.NewAdaptive[int](stack2d.WithAdaptive(stack2d.AdaptivePolicy{
		Goal:          stack2d.GoalLatencyTarget,
		LatencyTarget: 5 * time.Millisecond,
		KCeiling:      1024,
	}))
	defer s.Close()
	h := s.NewHandle()
	for i := 0; i < 1000; i++ {
		h.Push(i)
		h.Pop()
	}
	pol := s.Controller().Policy()
	fmt.Println(pol.Goal, pol.LatencyTarget, s.K() <= 1024)
	// Output: latency-target 5ms true
}

// A self-tuning queue: AdaptiveQueue wraps the 2D-Queue with the same
// controller; the Queue/QueueHandle API applies unchanged.
func ExampleNewAdaptiveQueue() {
	q := stack2d.NewAdaptiveQueue[string](stack2d.WithQueueExpectedThreads(1))
	defer q.Close()
	h := q.NewHandle()
	h.Enqueue("first")
	h.Enqueue("second")
	v, ok := h.Dequeue()
	fmt.Println(v, ok, q.Len())
	// Output: first true 1
}

// WithQueueAdaptive is WithAdaptive for queues; here the controller
// minimises work per operation (window moves + probes — the energy proxy)
// above a throughput floor.
func ExampleWithQueueAdaptive() {
	q := stack2d.NewAdaptiveQueue[int](
		stack2d.WithQueueWidth(2),
		stack2d.WithQueueAdaptive(stack2d.AdaptivePolicy{
			Goal:            stack2d.GoalEnergyPerOp,
			ThroughputFloor: 1,
		}),
	)
	defer q.Close()
	h := q.NewHandle()
	h.Enqueue(42)
	v, ok := h.Dequeue()
	fmt.Println(v, ok, q.Controller().Policy().Goal)
	// Output: 42 true energy-per-op
}
