package stack2d

import (
	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/twodqueue"
)

// AdaptiveQueue is a 2D-Queue whose window geometry is retuned continuously
// at runtime by the same feedback controller that drives Adaptive stacks:
// under contention it widens (more relaxation, more throughput), under
// light load it narrows (tighter FIFO semantics, cheaper searches). It
// embeds Queue, so the whole Queue and QueueHandle API applies unchanged;
// K() and Config() report the geometry active at the call.
//
// Create with NewAdaptiveQueue; call Close when done to stop the controller
// goroutine (operations remain usable after Close, the geometry just stops
// adapting).
type AdaptiveQueue[T any] struct {
	Queue[T]
	ctrl *adapt.Controller
}

// NewAdaptiveQueue builds a self-tuning 2D-Queue and starts its controller.
// Structural options (WithQueueWidth, WithQueueDepth, ...) set the
// *initial* geometry exactly as for NewQueue; WithQueueAdaptive supplies
// the controller policy (defaulted when absent). Invalid combinations
// panic, as in NewQueue; use NewAdaptiveQueueWithConfig to handle errors.
func NewAdaptiveQueue[T any](opts ...QueueOption) *AdaptiveQueue[T] {
	b := applyQueueOptions(opts)
	pol := DefaultAdaptivePolicy()
	if b.policy != nil {
		pol = *b.policy
	}
	a, err := NewAdaptiveQueueWithConfig[T](resolveQueueConfig(b), pol)
	if err != nil {
		panic(err)
	}
	// Observer before placement, as in NewQueue: the construction
	// placement event must reach it.
	if b.observer != nil {
		a.inner.SetObserver(b.observer)
	}
	if b.placePolicy != nil {
		a.inner.SetPlacement(b.placePolicy, b.placeSockets)
	}
	return a
}

// NewAdaptiveQueueWithConfig builds a self-tuning queue from an explicit
// initial configuration and controller policy, returning an error on
// invalid parameters. The controller is started before returning.
func NewAdaptiveQueueWithConfig[T any](cfg QueueConfig, pol AdaptivePolicy) (*AdaptiveQueue[T], error) {
	inner, err := twodqueue.New[T](cfg)
	if err != nil {
		return nil, err
	}
	ctrl, err := adapt.New(twodqueue.Steer(inner), pol)
	if err != nil {
		return nil, err
	}
	a := &AdaptiveQueue[T]{ctrl: ctrl}
	a.inner = inner
	ctrl.Start()
	return a, nil
}

// Controller returns the queue's feedback controller, for reading the
// decision history or pausing/resuming adaptation (Stop/Start).
func (a *AdaptiveQueue[T]) Controller() *AdaptiveController { return a.ctrl }

// Close stops the controller goroutine. The queue itself stays fully
// usable; it simply keeps its last geometry. Idempotent.
func (a *AdaptiveQueue[T]) Close() { a.ctrl.Stop() }

// Reconfigure swaps the window geometry by hand. Note that a running
// controller may immediately retune it; Stop the controller (or Close) for
// manual control.
func (a *AdaptiveQueue[T]) Reconfigure(cfg QueueConfig) error { return a.inner.Reconfigure(cfg) }

// StatsSnapshot aggregates the operation counters of every handle of this
// queue — the controller's input signal, exposed for observability.
func (a *AdaptiveQueue[T]) StatsSnapshot() core.OpStats { return a.inner.StatsSnapshot() }
