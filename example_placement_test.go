package stack2d_test

import (
	"fmt"

	"stack2d"
)

// ExampleWithPlacement builds a stack with NUMA-aware width placement on a
// 2-socket machine: the LocalFirst policy homes each sub-stack slot on a
// socket (a balanced interleave until the adaptive controller attributes
// growth to a specific socket), and a pinned handle probes its own
// socket's slots first. Placement changes only slot homes and visit order
// — the stack's k-out-of-order bound is exactly the unplaced stack's.
func ExampleWithPlacement() {
	s := stack2d.New[int](
		stack2d.WithWidth(4),
		stack2d.WithDepth(8),
		stack2d.WithPlacement(stack2d.LocalFirst(), 2),
	)

	h := s.NewHandle()
	h.Pin(1) // this goroutine runs on socket 1
	h.Push(42)
	v, ok := h.Pop()

	fmt.Println(v, ok)
	fmt.Println("homes:", s.Placement())
	// Output:
	// 42 true
	// homes: [0 1 0 1]
}
