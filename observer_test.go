package stack2d_test

import (
	"sync"
	"testing"

	"stack2d"
)

// eventLog is a concurrency-safe StructObserver: the adaptive controller
// may reconfigure from its own goroutine while the test also acts.
type eventLog struct {
	mu     sync.Mutex
	events []stack2d.StructEvent
}

func (l *eventLog) ObserveStruct(ev stack2d.StructEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) kinds() map[stack2d.StructEventKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := make(map[stack2d.StructEventKind]int)
	for _, ev := range l.events {
		m[ev.Kind]++
	}
	return m
}

// TestAdaptiveAppliesObserverOption pins the constructor wiring: an
// observer given to NewAdaptive must see the construction placement event
// (observer is installed before placement) and any later reconfiguration —
// a gap an external consumer once hit, since NewAdaptiveWithConfig cannot
// know about builder options.
func TestAdaptiveAppliesObserverOption(t *testing.T) {
	l := &eventLog{}
	a := stack2d.NewAdaptive[int](
		stack2d.WithExpectedThreads(2),
		stack2d.WithObserver(l),
		stack2d.WithPlacement(stack2d.LocalFirst(), 2),
	)
	a.Close() // stop the controller so the manual reconfig below sticks

	if got := l.kinds()[stack2d.StructPlacement]; got == 0 {
		t.Fatalf("observer missed the construction placement event (kinds: %v)", l.kinds())
	}
	cfg := a.Config()
	cfg.Width++
	if err := a.Reconfigure(cfg); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := l.kinds()[stack2d.StructReconfig]; got == 0 {
		t.Fatalf("observer missed the manual reconfiguration (kinds: %v)", l.kinds())
	}
}

// TestAdaptiveQueueAppliesObserverOption is the queue-side twin.
func TestAdaptiveQueueAppliesObserverOption(t *testing.T) {
	l := &eventLog{}
	q := stack2d.NewAdaptiveQueue[int](
		stack2d.WithQueueExpectedThreads(2),
		stack2d.WithQueueObserver(l),
		stack2d.WithQueuePlacement(stack2d.LocalFirst(), 2),
	)
	q.Close()

	if got := l.kinds()[stack2d.StructPlacement]; got == 0 {
		t.Fatalf("observer missed the construction placement event (kinds: %v)", l.kinds())
	}
	cfg := q.Config()
	cfg.Width++
	if err := q.Reconfigure(cfg); err != nil {
		t.Fatalf("Reconfigure: %v", err)
	}
	if got := l.kinds()[stack2d.StructReconfig]; got == 0 {
		t.Fatalf("observer missed the manual reconfiguration (kinds: %v)", l.kinds())
	}
}
