module stack2d

go 1.24
