package stack2d

import (
	"stack2d/internal/adapt"
	"stack2d/internal/elimination"
	"stack2d/internal/engine"
	"stack2d/internal/relax"
)

// SelectorPolicy configures the backend selector of an Engine: the
// semantics budget it enforces and the contention/symmetry thresholds at
// which it exchanges the live implementation. It is the backend-level
// sibling of AdaptivePolicy — that one retunes one structure's geometry,
// this one decides which structure should be live at all. See the field
// docs on the underlying type.
type SelectorPolicy = adapt.SelectorPolicy

// BackendSelector drives an Engine's backend choice; see SelectorPolicy
// and the underlying type for Step/History/SetKBudget.
type BackendSelector = adapt.Selector

// Swap reasons a BackendSelector reports (engine swap records and the
// selector history carry them verbatim).
const (
	ReasonKBudgetZero     = adapt.ReasonKBudgetZero
	ReasonKBudgetExceeded = adapt.ReasonKBudgetExceeded
	ReasonSymmetricStorm  = adapt.ReasonSymmetricStorm
	ReasonMixedLoad       = adapt.ReasonMixedLoad
)

// SwapRecord describes one completed backend exchange; see the field docs
// on the underlying type.
type SwapRecord = engine.SwapRecord

// Engine is a stack whose implementation is exchanged at runtime: a
// 2D-Stack (built from the usual structural options) fronts a registry of
// alternative backends — an elimination stack for symmetric contention
// storms and a strict Treiber stack for a collapsed semantics budget —
// behind one epoch-pinned switch. Operations never fail or stall more
// than a migration takes; items survive every swap; and the whole run
// stays k-distance-checkable with the documented budget (the largest
// bound of any backend that was active plus SwapDisplacementBound).
//
// Create with NewEngine; WithBackendSelection starts an automatic
// selector, otherwise drive swaps by hand with SwapTo. Close stops the
// selector goroutine (the engine stays fully usable on its last backend).
type Engine[T any] struct {
	sw  *engine.Switcher[T]
	sel *adapt.Selector
}

// engineSelector is consumed from the builder by NewEngine (set by
// WithBackendSelection); declared in options.go's builder.

// NewEngine builds a hot-swappable stack: the structural options
// configure the initial 2D backend exactly as for New, and elimination
// and strict alternatives are registered alongside it. Invalid
// combinations panic, as in New.
func NewEngine[T any](opts ...Option) *Engine[T] {
	b := applyOptions(opts)
	twod, err := relax.NewTwoDBackend[T](resolveConfig(b))
	if err != nil {
		panic(err)
	}
	sw, err := engine.New[T](twod)
	if err != nil {
		panic(err)
	}
	elim, err := relax.NewEliminationBackend[T](elimination.DefaultConfig(b.p))
	if err != nil {
		panic(err)
	}
	if err := sw.Register(elim); err != nil {
		panic(err)
	}
	if err := sw.Register(relax.NewTreiberBackend[T]()); err != nil {
		panic(err)
	}
	e := &Engine[T]{sw: sw}
	if b.selector != nil {
		sel, err := adapt.NewSelector(sw, *b.selector)
		if err != nil {
			panic(err)
		}
		e.sel = sel
		sel.Start()
	}
	return e
}

// EngineHandle is a per-goroutine operation context of an Engine; it
// survives backend swaps transparently. Not safe for concurrent use of
// the same handle.
type EngineHandle[T any] struct {
	h relax.Handle[T]
}

// NewHandle returns a fresh handle.
func (e *Engine[T]) NewHandle() *EngineHandle[T] {
	return &EngineHandle[T]{h: e.sw.NewHandle()}
}

// Push adds v to the active backend.
func (h *EngineHandle[T]) Push(v T) { h.h.Push(v) }

// Pop removes a value from the active backend; ok is false on empty.
func (h *EngineHandle[T]) Pop() (v T, ok bool) { return h.h.Pop() }

var _ Interface[int] = (*EngineHandle[int])(nil)

// ActiveBackend returns the catalogue name of the live backend
// ("2D-stack", "elimination", "treiber").
func (e *Engine[T]) ActiveBackend() string { return e.sw.ActiveBackend() }

// Backends returns the registered backend names.
func (e *Engine[T]) Backends() []string { return e.sw.Backends() }

// SwapTo makes the named backend live, migrating any residual items;
// reason is recorded in the swap history. No-op when already active.
func (e *Engine[T]) SwapTo(name, reason string) error {
	return e.sw.SwapBackend(name, reason)
}

// Swaps returns the completed swap records, in order.
func (e *Engine[T]) Swaps() []SwapRecord { return e.sw.Swaps() }

// K returns the semantics bound of the engine's history: the largest
// k-out-of-order bound of any backend that has been live. Add
// SwapDisplacementBound for a checker budget spanning swaps.
func (e *Engine[T]) K() int64 { return e.sw.KBound() }

// SwapDisplacementBound is the cumulative checker allowance the swap
// migrations added.
func (e *Engine[T]) SwapDisplacementBound() int64 { return e.sw.SwapDisplacementBound() }

// Len returns the live backend's approximate population.
func (e *Engine[T]) Len() int { return e.sw.Len() }

// Drain removes and returns all items; teardown only.
func (e *Engine[T]) Drain() []T { return e.sw.Drain() }

// Selector returns the automatic backend selector, or nil when the
// engine was built without WithBackendSelection. Use it to read the
// decision history or to move the semantics budget at runtime
// (SetKBudget).
func (e *Engine[T]) Selector() *BackendSelector { return e.sel }

// Close stops the selector goroutine, if any. The engine stays fully
// usable on its last backend. Idempotent.
func (e *Engine[T]) Close() {
	if e.sel != nil {
		e.sel.Stop()
	}
}
