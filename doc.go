// Package stack2d provides a scalable lock-free concurrent stack with
// tunable relaxed semantics — a faithful Go implementation of the 2D-Stack
// of Rukundo, Atalar and Tsigas ("Brief Announcement: 2D-Stack — A Scalable
// Lock-Free Stack Design that Continuously Relaxes Semantics for Better
// Performance", PODC 2018).
//
// A classic concurrent stack has a single access point — the top — which
// serialises every operation. The 2D-Stack replaces it with an array of
// `width` sub-stacks (disjoint-access parallelism, the horizontal
// dimension) and a window of height `depth` that keeps the sub-stack
// populations within a tight band (locality, the vertical dimension). A Pop
// may return an item that is not the exact LIFO top, but never one more
// than
//
//	k = (2·depth + shift) · (width − 1)
//
// positions away from it (k-out-of-order semantics, Theorem 1 of the
// paper with the constant corrected — the paper's transcription swaps
// the weights of depth and shift, which sequential counterexamples
// refute for shift < depth and which coincides with the form above at
// shift = depth, the paper's own setting and what every derived
// configuration here uses; DESIGN.md §2 records the resolution and the
// exhaustive-exploration certificate behind it). The parameters trade
// accuracy for throughput continuously, and a width-1 configuration
// degenerates to a strict lock-free stack. K() reports the bound of the
// active configuration, exact for every legal shift; concurrent
// executions add at most one position of measurement slack per in-flight
// operation.
//
// # Quick start
//
//	s := stack2d.New[int](stack2d.WithExpectedThreads(8))
//	h := s.NewHandle() // one per goroutine
//	h.Push(42)
//	v, ok := h.Pop()
//
// Handles carry the per-goroutine search state the algorithm needs; the
// convenience methods Stack.Push and Stack.Pop manage a pool of handles
// internally for callers that cannot thread a handle through.
//
// # Runtime self-tuning
//
// The window geometry need not be fixed: Adaptive wraps a Stack with a
// feedback controller that samples contention (CAS failures), window
// churn and search cost at runtime and retunes width and depth on the
// fly, either maximising throughput under a relaxation ceiling or holding
// a throughput floor at minimal k (see WithAdaptive and cmd/adapttune).
//
//	s := stack2d.NewAdaptive[int](stack2d.WithAdaptive(stack2d.AdaptivePolicy{
//		Goal:     stack2d.GoalMaxThroughput,
//		KCeiling: 8192,
//	}))
//	defer s.Close()
//
// # The 2D-Queue
//
// The paper's conclusion announces generalising the window technique to
// other structures; Queue is that generalisation for a FIFO queue. It
// spreads items over `width` Michael–Scott sub-queues with one window per
// end (enqueue and dequeue), dequeuing at most K() positions out of FIFO
// order, and a width-1 configuration degenerates to the strict queue
// (also available directly as StrictQueue). The constructor mirrors the
// stack's: functional options over GOMAXPROCS-derived defaults.
//
//	q := stack2d.NewQueue[int](stack2d.WithQueueExpectedThreads(8))
//	h := q.NewHandle() // one per goroutine
//	h.Enqueue(42)
//	v, ok := h.Dequeue()
//
// The queue self-tunes exactly like the stack: AdaptiveQueue attaches the
// same feedback controller to the queue's two-ended window geometry (see
// WithQueueAdaptive and cmd/adapttune -queue).
//
//	q := stack2d.NewAdaptiveQueue[int](stack2d.WithQueueAdaptive(stack2d.AdaptivePolicy{
//		Goal:     stack2d.GoalMaxThroughput,
//		KCeiling: 8192,
//	}))
//	defer q.Close()
//
// # NUMA-aware placement
//
// On multi-socket machines both structures can home each sub-structure
// slot on a socket and let handles probe same-socket slots first, keeping
// the window's hot cache lines intra-socket; the adaptive controller then
// places new capacity on the socket whose contention asked for it. Enable
// with WithPlacement / WithQueuePlacement (policies LocalFirst and
// RoundRobin) and pin handles with Handle.Pin; placement never changes
// the relaxation semantics, only slot homes and probe order (DESIGN.md
// §7, and cmd/adapttune -placement for the measured A/B).
//
// The companion packages under internal implement every baseline of the
// paper's evaluation (Treiber, elimination back-off, k-segment, and the
// random / random-c2 / k-robin distributed stacks), the quality oracle and
// the benchmark harness; see DESIGN.md in the repository root for the
// design notes (window mechanism, Theorem 1 bound, reconfiguration
// invariants), and cmd/stackbench for regenerating the paper's figures.
package stack2d
