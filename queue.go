package stack2d

import (
	"stack2d/internal/msqueue"
	"stack2d/internal/twodqueue"
)

// Queue is a lock-free relaxed FIFO queue built with the same
// two-dimensional window technique as the Stack — the generalisation the
// paper's conclusion announces as future work. Dequeue returns an item at
// most K() positions out of FIFO order (plus one position per concurrent
// in-flight operation).
//
// Create with NewQueue; use one QueueHandle per goroutine on hot paths.
type Queue[T any] struct {
	inner *twodqueue.Queue[T]
}

// QueueConfig re-exports the 2D-Queue tuning parameters: Width sub-queues,
// a window of height Depth per end, moved by Shift when exhausted.
type QueueConfig = twodqueue.Config

// NewQueue builds a 2D-Queue for p expected concurrent goroutines using
// the default structure (width 4P, depth 64). It panics if p produces an
// invalid configuration (it cannot); use NewQueueWithConfig for explicit
// control.
func NewQueue[T any](p int) *Queue[T] {
	q, err := NewQueueWithConfig[T](twodqueue.DefaultConfig(p))
	if err != nil {
		panic(err) // unreachable: DefaultConfig always validates
	}
	return q
}

// NewQueueWithConfig builds a 2D-Queue from an explicit configuration.
func NewQueueWithConfig[T any](cfg QueueConfig) (*Queue[T], error) {
	inner, err := twodqueue.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{inner: inner}, nil
}

// QueueHandle is the per-goroutine operation context for a Queue.
type QueueHandle[T any] struct {
	h *twodqueue.Handle[T]
}

// NewHandle returns a fresh handle anchored at random sub-queues.
func (q *Queue[T]) NewHandle() *QueueHandle[T] {
	return &QueueHandle[T]{h: q.inner.NewHandle()}
}

// Enqueue adds v at the (relaxed) back of the queue.
func (h *QueueHandle[T]) Enqueue(v T) { h.h.Enqueue(v) }

// Dequeue removes and returns a value from near the front; ok is false
// when the queue is empty.
func (h *QueueHandle[T]) Dequeue() (v T, ok bool) { return h.h.Dequeue() }

// Len returns the total number of stored items; exact when quiescent.
func (q *Queue[T]) Len() int { return q.inner.Len() }

// K returns the queue's sequential k-out-of-order relaxation bound.
func (q *Queue[T]) K() int64 { return q.inner.Config().K() }

// Config returns the configuration the queue was built with.
func (q *Queue[T]) Config() QueueConfig { return q.inner.Config() }

// Drain removes and returns all items; teardown helper, not concurrent.
func (q *Queue[T]) Drain() []T { return q.inner.Drain() }

// StrictQueue is a strict (k = 0) lock-free FIFO queue — the classic
// Michael–Scott queue — for callers needing exact ordering or a baseline.
// Create with NewStrictQueue.
type StrictQueue[T any] struct {
	inner *msqueue.Queue[T]
}

// NewStrictQueue returns an empty strict FIFO queue.
func NewStrictQueue[T any]() *StrictQueue[T] {
	return &StrictQueue[T]{inner: msqueue.New[T]()}
}

// Enqueue appends v at the back.
func (q *StrictQueue[T]) Enqueue(v T) { q.inner.Enqueue(v) }

// Dequeue removes and returns the exact front value; ok is false on empty.
func (q *StrictQueue[T]) Dequeue() (v T, ok bool) { return q.inner.Dequeue() }

// Len returns the approximate number of items.
func (q *StrictQueue[T]) Len() int { return q.inner.Len() }
