package stack2d

import (
	"runtime"

	"stack2d/internal/msqueue"
	"stack2d/internal/twodqueue"
)

// Queue is a lock-free relaxed FIFO queue built with the same
// two-dimensional window technique as the Stack — the generalisation the
// paper's conclusion announces as future work. Dequeue returns an item at
// most K() positions out of FIFO order (plus one position per concurrent
// in-flight operation).
//
// Create with NewQueue; use one QueueHandle per goroutine on hot paths.
type Queue[T any] struct {
	inner *twodqueue.Queue[T]
}

// QueueConfig re-exports the 2D-Queue tuning parameters: Width sub-queues,
// a window of height Depth per end, moved by Shift when exhausted.
type QueueConfig = twodqueue.Config

// QueueOption configures a Queue built by NewQueue, mirroring the stack's
// functional options (so a future adaptive option can apply to both ends).
type QueueOption func(*queueBuilder)

type queueBuilder struct {
	p       int
	width   int
	depth   int64
	shift   int64
	hops    int
	hopsSet bool
}

// buildQueueConfig resolves the option list exactly as the stack's
// buildConfig does: defaults from the expected thread count, then explicit
// structural options override field by field.
func buildQueueConfig(opts []QueueOption) QueueConfig {
	b := queueBuilder{p: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&b)
	}
	base := twodqueue.DefaultConfig(b.p)
	if b.width != 0 {
		base.Width = b.width
	}
	if b.depth != 0 {
		base.Depth = b.depth
		if b.shift == 0 && base.Shift > base.Depth {
			// Only depth was given: keep shift consistent with it.
			base.Shift = base.Depth
		}
	}
	if b.shift != 0 {
		base.Shift = b.shift
	}
	if b.hopsSet {
		base.RandomHops = b.hops
	}
	return base
}

// WithQueueExpectedThreads declares the expected number of concurrent
// goroutines P; the default structure is width 4P, depth = shift = 64.
// Defaults to runtime.GOMAXPROCS(0).
func WithQueueExpectedThreads(p int) QueueOption {
	return func(b *queueBuilder) { b.p = p }
}

// WithQueueWidth sets the number of sub-queues explicitly.
func WithQueueWidth(width int) QueueOption {
	return func(b *queueBuilder) { b.width = width }
}

// WithQueueDepth sets the per-end window height explicitly (and clamps
// shift down to it when shift is not also set).
func WithQueueDepth(depth int64) QueueOption {
	return func(b *queueBuilder) { b.depth = depth }
}

// WithQueueShift sets the window step explicitly (1 <= shift <= depth).
func WithQueueShift(shift int64) QueueOption {
	return func(b *queueBuilder) { b.shift = shift }
}

// WithQueueRandomHops sets how many random probes precede round-robin
// search.
func WithQueueRandomHops(n int) QueueOption {
	return func(b *queueBuilder) {
		b.hops = n
		b.hopsSet = true
	}
}

// NewQueue builds a 2D-Queue configured by the supplied options; without
// options it is tuned for runtime.GOMAXPROCS(0) threads (width 4P,
// depth 64), matching New's behaviour for the stack. Invalid combinations
// panic, since they are programming errors; use NewQueueWithConfig to
// handle errors.
func NewQueue[T any](opts ...QueueOption) *Queue[T] {
	q, err := NewQueueWithConfig[T](buildQueueConfig(opts))
	if err != nil {
		panic(err)
	}
	return q
}

// NewQueueWithConfig builds a 2D-Queue from an explicit configuration.
func NewQueueWithConfig[T any](cfg QueueConfig) (*Queue[T], error) {
	inner, err := twodqueue.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{inner: inner}, nil
}

// QueueHandle is the per-goroutine operation context for a Queue.
type QueueHandle[T any] struct {
	h *twodqueue.Handle[T]
}

// NewHandle returns a fresh handle anchored at random sub-queues.
func (q *Queue[T]) NewHandle() *QueueHandle[T] {
	return &QueueHandle[T]{h: q.inner.NewHandle()}
}

// Enqueue adds v at the (relaxed) back of the queue.
func (h *QueueHandle[T]) Enqueue(v T) { h.h.Enqueue(v) }

// Dequeue removes and returns a value from near the front; ok is false
// when the queue is empty.
func (h *QueueHandle[T]) Dequeue() (v T, ok bool) { return h.h.Dequeue() }

// Len returns the total number of stored items; exact when quiescent.
func (q *Queue[T]) Len() int { return q.inner.Len() }

// K returns the queue's sequential k-out-of-order relaxation bound.
func (q *Queue[T]) K() int64 { return q.inner.Config().K() }

// Config returns the configuration the queue was built with.
func (q *Queue[T]) Config() QueueConfig { return q.inner.Config() }

// Drain removes and returns all items; teardown helper, not concurrent.
func (q *Queue[T]) Drain() []T { return q.inner.Drain() }

// StrictQueue is a strict (k = 0) lock-free FIFO queue — the classic
// Michael–Scott queue — for callers needing exact ordering or a baseline.
// Create with NewStrictQueue.
type StrictQueue[T any] struct {
	inner *msqueue.Queue[T]
}

// NewStrictQueue returns an empty strict FIFO queue.
func NewStrictQueue[T any]() *StrictQueue[T] {
	return &StrictQueue[T]{inner: msqueue.New[T]()}
}

// Enqueue appends v at the back.
func (q *StrictQueue[T]) Enqueue(v T) { q.inner.Enqueue(v) }

// Dequeue removes and returns the exact front value; ok is false on empty.
func (q *StrictQueue[T]) Dequeue() (v T, ok bool) { return q.inner.Dequeue() }

// Len returns the approximate number of items.
func (q *StrictQueue[T]) Len() int { return q.inner.Len() }
