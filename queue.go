package stack2d

import (
	"runtime"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/msqueue"
	"stack2d/internal/twodqueue"
)

// Queue is a lock-free relaxed FIFO queue built with the same
// two-dimensional window technique as the Stack — the generalisation the
// paper's conclusion announces as future work. Dequeue returns an item at
// most K() positions out of FIFO order (plus one position per concurrent
// in-flight operation).
//
// Create with NewQueue; use one QueueHandle per goroutine on hot paths.
type Queue[T any] struct {
	inner *twodqueue.Queue[T]
	// opBuffer is WithQueueOpBuffer's threshold; NewHandle arms it on
	// every handle.
	opBuffer int
}

// QueueConfig re-exports the 2D-Queue tuning parameters: Width sub-queues,
// a window of height Depth per end, moved by Shift when exhausted.
type QueueConfig = twodqueue.Config

// QueueOption configures a Queue built by NewQueue (or an AdaptiveQueue
// built by NewAdaptiveQueue), mirroring the stack's functional options.
type QueueOption func(*queueBuilder)

type queueBuilder struct {
	p      int
	geom   geomOverrides
	policy *adapt.Policy // set by WithQueueAdaptive; consumed by NewAdaptiveQueue

	// placePolicy/placeSockets are set by WithQueuePlacement and applied
	// to the freshly built queue, as in the stack's builder.
	placePolicy  core.PlacementPolicy
	placeSockets int

	// observer is set by WithQueueObserver and installed on the freshly
	// built queue, as in the stack's builder.
	observer StructObserver

	// opBuffer is set by WithQueueOpBuffer: every handle the queue creates
	// is armed with an operation buffer of this threshold (0 = off).
	opBuffer int
}

// applyQueueOptions runs the option list over a fresh queue builder.
func applyQueueOptions(opts []QueueOption) queueBuilder {
	b := queueBuilder{p: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&b)
	}
	return b
}

// resolveQueueConfig turns a populated queue builder into a concrete
// configuration: defaults from the expected thread count, then the shared
// structural-override rules (see geomOverrides.resolve) — the same
// resolution the stack's resolveConfig performs, deduplicated.
func resolveQueueConfig(b queueBuilder) QueueConfig {
	base := twodqueue.DefaultConfig(b.p)
	b.geom.resolve(&base.Width, &base.Depth, &base.Shift, &base.RandomHops)
	return base
}

// WithQueueExpectedThreads declares the expected number of concurrent
// goroutines P; the default structure is width 4P, depth = shift = 64.
// Defaults to runtime.GOMAXPROCS(0).
func WithQueueExpectedThreads(p int) QueueOption {
	return func(b *queueBuilder) { b.p = p }
}

// WithQueueWidth sets the number of sub-queues explicitly.
func WithQueueWidth(width int) QueueOption {
	return func(b *queueBuilder) { b.geom.width = width }
}

// WithQueueDepth sets the per-end window height explicitly (and clamps
// shift down to it when shift is not also set).
func WithQueueDepth(depth int64) QueueOption {
	return func(b *queueBuilder) { b.geom.depth = depth }
}

// WithQueueShift sets the window step explicitly (and lifts depth up to it
// when depth is not also set, keeping 1 <= shift <= depth satisfiable).
func WithQueueShift(shift int64) QueueOption {
	return func(b *queueBuilder) { b.geom.shift = shift }
}

// WithQueueRandomHops sets how many random probes precede round-robin
// search.
func WithQueueRandomHops(n int) QueueOption {
	return func(b *queueBuilder) {
		b.geom.hops = n
		b.geom.hopsSet = true
	}
}

// WithQueueAdaptive supplies the feedback-controller policy for a
// self-tuning queue; the structural options then only pick the *initial*
// geometry. It is consumed by NewAdaptiveQueue — a plain NewQueue ignores
// it, since a static Queue has no controller to configure.
func WithQueueAdaptive(policy AdaptivePolicy) QueueOption {
	return func(b *queueBuilder) { b.policy = &policy }
}

// WithQueueObserver installs a structural observer on the freshly built
// queue — WithObserver for the 2D-Queue; the queue shares the stack's event
// vocabulary (StructEvent), so one observer implementation serves both.
func WithQueueObserver(o StructObserver) QueueOption {
	return func(b *queueBuilder) { b.observer = o }
}

// WithQueueOpBuffer arms per-handle operation buffering with a combined-
// publication threshold of n operations — WithOpBuffer for the 2D-Queue
// (DESIGN.md §11). Enqueues batch locally and publish combined; dequeues
// serve from an n-value prefetch. Pending enqueues are never served back
// to their own handle (that would maximise FIFO displacement); a dequeue
// finding the structure empty flushes them and retries instead. Call
// QueueHandle.Flush before quiescing or draining. n <= 0 leaves buffering
// off (the default).
func WithQueueOpBuffer(n int) QueueOption {
	return func(b *queueBuilder) { b.opBuffer = n }
}

// NewQueue builds a 2D-Queue configured by the supplied options; without
// options it is tuned for runtime.GOMAXPROCS(0) threads (width 4P,
// depth 64), matching New's behaviour for the stack. Invalid combinations
// panic, since they are programming errors; use NewQueueWithConfig to
// handle errors.
func NewQueue[T any](opts ...QueueOption) *Queue[T] {
	b := applyQueueOptions(opts)
	q, err := NewQueueWithConfig[T](resolveQueueConfig(b))
	if err != nil {
		panic(err)
	}
	if b.observer != nil {
		q.inner.SetObserver(b.observer)
	}
	if b.placePolicy != nil {
		q.inner.SetPlacement(b.placePolicy, b.placeSockets)
	}
	q.opBuffer = b.opBuffer
	return q
}

// NewQueueWithConfig builds a 2D-Queue from an explicit configuration.
func NewQueueWithConfig[T any](cfg QueueConfig) (*Queue[T], error) {
	inner, err := twodqueue.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &Queue[T]{inner: inner}, nil
}

// QueueHandle is the per-goroutine operation context for a Queue. On a
// queue built WithQueueOpBuffer the handle additionally batches its
// operations for combined publication (see WithQueueOpBuffer and Flush).
type QueueHandle[T any] struct {
	h        *twodqueue.Handle[T]
	buffered bool
}

// NewHandle returns a fresh handle anchored at random sub-queues; on a
// queue built WithQueueOpBuffer the handle comes armed with its op buffer.
func (q *Queue[T]) NewHandle() *QueueHandle[T] {
	h := &QueueHandle[T]{h: q.inner.NewHandle()}
	if q.opBuffer > 0 {
		h.h.SetOpBuffer(q.opBuffer)
		h.buffered = true
	}
	return h
}

// Enqueue adds v at the (relaxed) back of the queue (through the op buffer
// when armed).
func (h *QueueHandle[T]) Enqueue(v T) {
	if h.buffered {
		h.h.BufferedEnqueue(v)
		return
	}
	h.h.Enqueue(v)
}

// Dequeue removes and returns a value from near the front (through the op
// buffer when armed); ok is false when the queue is empty.
func (h *QueueHandle[T]) Dequeue() (v T, ok bool) {
	if h.buffered {
		return h.h.BufferedDequeue()
	}
	return h.h.Dequeue()
}

// EnqueueBatch enqueues all values in order with one window-counter bump
// per placement run, amortising the coherence traffic of len(vs)
// singleton enqueues. On a buffered handle any pending buffered enqueues
// are published first, preserving program order.
func (h *QueueHandle[T]) EnqueueBatch(vs []T) {
	if h.buffered {
		h.h.FlushOps()
	}
	h.h.EnqueueBatch(vs)
}

// DequeueBatch removes up to max values, front-first; it returns fewer
// when the queue runs out of items. On a buffered handle the values flow
// through the op buffer, so earlier prefetched values are delivered first.
func (h *QueueHandle[T]) DequeueBatch(max int) []T {
	if !h.buffered {
		return h.h.DequeueBatch(max)
	}
	out := make([]T, 0, max)
	for len(out) < max {
		v, ok := h.h.BufferedDequeue()
		if !ok {
			break
		}
		out = append(out, v)
	}
	return out
}

// Flush publishes the handle's buffered enqueues immediately; a no-op on
// an unbuffered handle. Call before quiescing, before Queue.Drain, or
// before abandoning the handle.
func (h *QueueHandle[T]) Flush() {
	if h.buffered {
		h.h.FlushOps()
	}
}

// Len returns the total number of stored items; exact when quiescent.
func (q *Queue[T]) Len() int { return q.inner.Len() }

// K returns the queue's sequential k-out-of-order relaxation bound,
// (2·depth + shift)·(width − 1) — the corrected Theorem-1 constant shared
// with the stack, exact for every legal shift (DESIGN.md §2); concurrent
// executions add one position per in-flight operation.
func (q *Queue[T]) K() int64 { return q.inner.Config().K() }

// Config returns the queue's active configuration — under live
// reconfiguration (AdaptiveQueue, or a running controller) the geometry
// current at the call, which may immediately be superseded.
func (q *Queue[T]) Config() QueueConfig { return q.inner.Config() }

// SetObserver installs (or, with nil, removes) the queue's structural
// observer at runtime; see WithQueueObserver and StructObserver.
func (q *Queue[T]) SetObserver(o StructObserver) { q.inner.SetObserver(o) }

// Drain removes and returns all items; teardown helper, not concurrent.
// Buffered handles (WithQueueOpBuffer) must Flush first — Drain only sees
// published items.
func (q *Queue[T]) Drain() []T { return q.inner.Drain() }

// StrictQueue is a strict (k = 0) lock-free FIFO queue — the classic
// Michael–Scott queue — for callers needing exact ordering or a baseline.
// Create with NewStrictQueue.
type StrictQueue[T any] struct {
	inner *msqueue.Queue[T]
}

// NewStrictQueue returns an empty strict FIFO queue.
func NewStrictQueue[T any]() *StrictQueue[T] {
	return &StrictQueue[T]{inner: msqueue.New[T]()}
}

// Enqueue appends v at the back.
func (q *StrictQueue[T]) Enqueue(v T) { q.inner.Enqueue(v) }

// Dequeue removes and returns the exact front value; ok is false on empty.
func (q *StrictQueue[T]) Dequeue() (v T, ok bool) { return q.inner.Dequeue() }

// Len returns the approximate number of items.
func (q *StrictQueue[T]) Len() int { return q.inner.Len() }
