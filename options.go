package stack2d

import (
	"runtime"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/relax"
)

// Option configures a Stack built by New (or an Adaptive stack built by
// NewAdaptive).
type Option func(*builder)

type builder struct {
	p    int // expected threads (for defaults and WithRelaxation)
	k    int64
	kSet bool

	width   int
	depth   int64
	shift   int64
	hops    int
	hopsSet bool

	policy *adapt.Policy // set by WithAdaptive; consumed by NewAdaptive
}

// applyOptions runs the option list over a fresh builder.
func applyOptions(opts []Option) builder {
	b := builder{p: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&b)
	}
	return b
}

// buildConfig resolves the option list into a concrete configuration.
// Precedence: WithRelaxation derives a structure from the k budget and the
// expected thread count; explicit structural options (width, depth, shift,
// hops) then override the derived or default values field by field.
func buildConfig(opts []Option) core.Config {
	return resolveConfig(applyOptions(opts))
}

// resolveConfig turns a populated builder into a concrete configuration.
func resolveConfig(b builder) core.Config {
	base := core.DefaultConfig(b.p)
	if b.kSet {
		base = relax.TwoDConfigForK(b.k, b.p)
	}
	if b.width != 0 {
		base.Width = b.width
	}
	if b.depth != 0 {
		base.Depth = b.depth
		if b.shift == 0 && base.Shift > base.Depth {
			// Only depth was given: keep shift consistent with it.
			base.Shift = base.Depth
		}
	}
	if b.shift != 0 {
		base.Shift = b.shift
	}
	if b.hopsSet {
		base.RandomHops = b.hops
	}
	return base
}

// WithExpectedThreads declares the expected number of concurrent
// goroutines P. The default structure follows the paper's optimum:
// width = 4P. Defaults to runtime.GOMAXPROCS(0).
func WithExpectedThreads(p int) Option {
	return func(b *builder) { b.p = p }
}

// WithRelaxation requests a target k-out-of-order budget; the structure
// (width first, then depth — horizontal before vertical, as in the paper)
// is derived so that the realised bound K() never exceeds k. Combine with
// WithExpectedThreads for the width cap.
func WithRelaxation(k int64) Option {
	return func(b *builder) {
		b.k = k
		b.kSet = true
	}
}

// WithWidth sets the number of sub-stacks explicitly.
func WithWidth(width int) Option {
	return func(b *builder) { b.width = width }
}

// WithDepth sets the window height explicitly (and clamps shift down to it
// when shift is not also set).
func WithDepth(depth int64) Option {
	return func(b *builder) { b.depth = depth }
}

// WithShift sets the window step explicitly (1 <= shift <= depth).
func WithShift(shift int64) Option {
	return func(b *builder) { b.shift = shift }
}

// WithRandomHops sets how many random probes precede round-robin search.
func WithRandomHops(n int) Option {
	return func(b *builder) {
		b.hops = n
		b.hopsSet = true
	}
}

// WithAdaptive supplies the feedback-controller policy for a self-tuning
// stack; the structural options then only pick the *initial* geometry. It
// is consumed by NewAdaptive — a plain New ignores it, since a static
// Stack has no controller to configure.
func WithAdaptive(policy AdaptivePolicy) Option {
	return func(b *builder) { b.policy = &policy }
}
