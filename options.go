package stack2d

import (
	"runtime"

	"stack2d/internal/adapt"
	"stack2d/internal/core"
	"stack2d/internal/relax"
)

// Option configures a Stack built by New (or an Adaptive stack built by
// NewAdaptive).
type Option func(*builder)

type builder struct {
	p    int // expected threads (for defaults and WithRelaxation)
	k    int64
	kSet bool

	geom geomOverrides

	policy *adapt.Policy // set by WithAdaptive; consumed by NewAdaptive

	selector *adapt.SelectorPolicy // set by WithBackendSelection; consumed by NewEngine

	// placePolicy/placeSockets are set by WithPlacement and applied to the
	// freshly built stack (placement is a structure setting, not a Config
	// field, so it rides beside the geometry options).
	placePolicy  core.PlacementPolicy
	placeSockets int

	// observer is set by WithObserver and installed on the freshly built
	// stack; like placement, a structure setting rather than a Config field.
	observer StructObserver

	// opBuffer is set by WithOpBuffer: every handle the stack creates is
	// armed with an operation buffer of this threshold (0 = off).
	opBuffer int
}

// geomOverrides carries the explicit structural options shared by the stack
// and queue builders; resolve applies them over a base configuration. It is
// the single copy of the override/consistency rules (depth-only clamps
// shift down; shift-only lifts depth up), which used to be duplicated —
// and, on the shift-only path, buggy — in buildQueueConfig.
type geomOverrides struct {
	width   int
	depth   int64
	shift   int64
	hops    int
	hopsSet bool
}

// resolve applies the overrides field by field. A lone depth override drags
// shift down with it (shift <= depth must hold); a lone shift override
// lifts depth up to match, since the intent — a larger window step — is
// unambiguous and shift = depth is the paper's maximum-locality setting.
// When both are given they are taken verbatim, so contradictory pairs still
// fail validation.
func (o geomOverrides) resolve(width *int, depth, shift *int64, hops *int) {
	if o.width != 0 {
		*width = o.width
	}
	if o.depth != 0 {
		*depth = o.depth
		if o.shift == 0 && *shift > *depth {
			*shift = *depth
		}
	}
	if o.shift != 0 {
		*shift = o.shift
		if o.depth == 0 && *depth < *shift {
			*depth = *shift
		}
	}
	if o.hopsSet {
		*hops = o.hops
	}
}

// applyOptions runs the option list over a fresh builder.
func applyOptions(opts []Option) builder {
	b := builder{p: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&b)
	}
	return b
}

// resolveConfig turns a populated builder into a concrete configuration.
func resolveConfig(b builder) core.Config {
	base := core.DefaultConfig(b.p)
	if b.kSet {
		base = relax.TwoDConfigForK(b.k, b.p)
	}
	b.geom.resolve(&base.Width, &base.Depth, &base.Shift, &base.RandomHops)
	return base
}

// WithExpectedThreads declares the expected number of concurrent
// goroutines P. The default structure follows the paper's optimum:
// width = 4P. Defaults to runtime.GOMAXPROCS(0).
func WithExpectedThreads(p int) Option {
	return func(b *builder) { b.p = p }
}

// WithRelaxation requests a target k-out-of-order budget; the structure
// (width first, then depth — horizontal before vertical, as in the paper)
// is derived so that the realised bound K() never exceeds k. Combine with
// WithExpectedThreads for the width cap.
func WithRelaxation(k int64) Option {
	return func(b *builder) {
		b.k = k
		b.kSet = true
	}
}

// WithWidth sets the number of sub-stacks explicitly.
func WithWidth(width int) Option {
	return func(b *builder) { b.geom.width = width }
}

// WithDepth sets the window height explicitly (and clamps shift down to it
// when shift is not also set).
func WithDepth(depth int64) Option {
	return func(b *builder) { b.geom.depth = depth }
}

// WithShift sets the window step explicitly (and lifts depth up to it when
// depth is not also set, keeping 1 <= shift <= depth satisfiable).
func WithShift(shift int64) Option {
	return func(b *builder) { b.geom.shift = shift }
}

// WithRandomHops sets how many random probes precede round-robin search.
func WithRandomHops(n int) Option {
	return func(b *builder) {
		b.geom.hops = n
		b.geom.hopsSet = true
	}
}

// WithAdaptive supplies the feedback-controller policy for a self-tuning
// stack; the structural options then only pick the *initial* geometry. It
// is consumed by NewAdaptive — a plain New ignores it, since a static
// Stack has no controller to configure.
func WithAdaptive(policy AdaptivePolicy) Option {
	return func(b *builder) { b.policy = &policy }
}

// WithBackendSelection supplies the backend-selector policy for a
// hot-swappable Engine and starts the selector with it; the structural
// options then configure the initial 2D backend. It is consumed by
// NewEngine — a plain New ignores it, since a static Stack has no
// alternative backends to select among.
func WithBackendSelection(policy SelectorPolicy) Option {
	return func(b *builder) { b.selector = &policy }
}

// StructObserver receives the stack's structural transition events —
// geometry reconfigurations, warm shrink handoffs, placement re-homes
// (StructEvent). Implementations must be fast and must not call back into
// the structure; internal/obs's ring tracer is the intended consumer. The
// observer is never read on the operation hot path, so instrumentation
// costs nothing per Push/Pop.
type StructObserver = core.Observer

// StructEventKind enumerates the structural transitions a StructObserver
// distinguishes (alias of core.StructEventKind).
type StructEventKind = core.StructEventKind

// StructEvent is one structural transition report; see the field docs on
// the underlying type for the geometry, attribution and displacement
// payload each event kind carries.
type StructEvent = core.StructEvent

// Event kinds a StructObserver distinguishes; see core.StructEventKind.
const (
	StructReconfig      = core.StructReconfig
	StructShrinkHandoff = core.StructShrinkHandoff
	StructPlacement     = core.StructPlacement
)

// WithObserver installs a structural observer on the freshly built stack,
// so reconfigurations are observable from the first one. Equivalent to
// calling SetObserver immediately after New.
func WithObserver(o StructObserver) Option {
	return func(b *builder) { b.observer = o }
}

// WithOpBuffer arms per-handle operation buffering with a combined-
// publication threshold of n operations: each handle batches its pushes
// locally and publishes them as one combined batch when n are pending, and
// refills a local pop prefetch n values at a time — the raw-speed
// campaign's fast path (DESIGN.md §11). Buffered operations take effect at
// their publish/serve point rather than at the call, relaxing order by at
// most 3·P·n extra positions across P handles; call Handle.Flush before
// quiescing or draining. n <= 0 leaves buffering off (the default). The
// pooled convenience API (Stack.Push/Pop) never buffers — a pooled
// handle's residents would outlive the call that created them.
func WithOpBuffer(n int) Option {
	return func(b *builder) { b.opBuffer = n }
}
